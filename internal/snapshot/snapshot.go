// Package snapshot implements SEBDB's checkpoint subsystem: atomic,
// CRC-verified snapshots of the engine's derived state — storage
// segment metadata, catalog, contract registry, table-level bitmaps,
// layered indexes and ALIs — pinned to a block height and an anchor
// block hash. The chain remains the only source of truth: a checkpoint
// merely lets Engine.Open seed state for blocks [0, Height) and replay
// only the suffix, and any corrupt or stale checkpoint is discarded in
// favour of full replay (never wrong answers, only slower ones).
//
// On-disk layout, inside <data-dir>/snapshots/:
//
//	ckpt-<height>.snap   encoded checkpoint payload + CRC-32 trailer
//	MANIFEST             pins {height, anchor, file, size, crc}
//
// Both files are written to a .tmp sibling, synced, and renamed into
// place, so a crash at any point leaves either the previous checkpoint
// or the new one — never a half-written mix (see faultfs crash tests).
package snapshot

import (
	"errors"
	"fmt"
	"sort"

	"sebdb/internal/contract"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/schema"
	"sebdb/internal/storage"
	"sebdb/internal/types"
)

const (
	ckptMagic     = 0x5EBD_C4B7
	manifestMagic = 0x5EBD_3A1F
	// version 2 added the per-block stored length and compression flag
	// (storage.Meta.Stored/Comp) so checkpoints describe recompressed
	// segments. Version-1 checkpoints are rejected as corrupt, which
	// callers treat as "no checkpoint" and fall back to full replay.
	version = 2
)

// ErrCorrupt is returned when a checkpoint or manifest fails its CRC,
// magic, or structural checks. Callers treat it as "no checkpoint".
var ErrCorrupt = errors.New("snapshot: corrupt checkpoint")

// IndexState is the serialised form of one layered index: its
// identity, first-level histogram bounds (continuous only) and the
// per-block second-level entries. Replaying the entries through
// layered.Index.AppendBlock reproduces the index exactly.
type IndexState struct {
	// Key is the engine's registry key (e.g. "donate.money" or the
	// system keys ".senid"/".tname").
	Key string
	// Attr is the indexed attribute name.
	Attr string
	// Continuous selects histogram bucketing; Bounds are its inner
	// boundaries.
	Continuous bool
	Bounds     []float64
	// Blocks holds, per block height, the second-level entries in key
	// order (nil for blocks without indexed rows).
	Blocks [][]layered.Entry
}

// ALIState is the serialised form of one authenticated layered index:
// per-block MB-tree records (key + authenticated payload). Rebuilding
// the trees re-derives every root hash, so no digests are persisted —
// a tampered checkpoint cannot forge authentication state.
type ALIState struct {
	Key        string
	Attr       string
	Continuous bool
	Bounds     []float64
	Blocks     [][]mbtree.Record
}

// Checkpoint is the full derived state of an engine at a block height.
type Checkpoint struct {
	// Height is the number of blocks the checkpoint covers: state
	// reflects blocks [0, Height).
	Height uint64
	// Anchor is the hash of block Height-1, pinning the checkpoint to
	// one specific chain.
	Anchor types.Hash
	// LastTid and LastTs are the engine's transaction-id and
	// block-timestamp high-water marks.
	LastTid uint64
	LastTs  int64
	// Store is the segment metadata for blocks [0, Height).
	Store *storage.Meta
	// Tables is the catalog (user table schemas, in name order).
	Tables []*schema.Table
	// Contracts is the contract registry (in name order).
	Contracts []*contract.Contract
	// TableIdx maps table-index keys (Tname and "senid:"-prefixed
	// SenID values) to the sorted block ids containing them.
	TableIdx map[string][]uint32
	// Indexes are the layered indexes (system and user), key order.
	Indexes []IndexState
	// ALIs are the authenticated indexes, key order.
	ALIs []ALIState
}

// Encode renders the checkpoint payload (without the CRC trailer).
func (c *Checkpoint) Encode() []byte {
	e := types.NewEncoder(1 << 16)
	e.Uint32(ckptMagic)
	e.Uint32(version)
	e.Uint64(c.Height)
	e.Bytes32(c.Anchor)
	e.Uint64(c.LastTid)
	e.Int64(c.LastTs)

	e.Count(c.Store.Count())
	for i := range c.Store.Headers {
		c.Store.Headers[i].Encode(e)
		e.Uint32(c.Store.Locs[i].Segment)
		e.Int64(c.Store.Locs[i].Offset)
		e.Int64(c.Store.Lens[i])
		e.Int64(c.Store.Stored[i])
		if c.Store.Comp[i] {
			e.Uint8(1)
		} else {
			e.Uint8(0)
		}
		e.Count(len(c.Store.TxOffs[i]))
		for _, o := range c.Store.TxOffs[i] {
			e.Uint32(o)
		}
	}

	e.Count(len(c.Tables))
	for _, t := range c.Tables {
		e.Values(t.EncodeDDL())
	}
	e.Count(len(c.Contracts))
	for _, ct := range c.Contracts {
		e.Values(ct.EncodeDeploy())
	}

	keys := make([]string, 0, len(c.TableIdx))
	for k := range c.TableIdx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Count(len(keys))
	for _, k := range keys {
		e.Str(k)
		e.Count(len(c.TableIdx[k]))
		for _, b := range c.TableIdx[k] {
			e.Uint32(b)
		}
	}

	e.Count(len(c.Indexes))
	for i := range c.Indexes {
		encodeIndexState(e, &c.Indexes[i])
	}

	e.Count(len(c.ALIs))
	for i := range c.ALIs {
		a := &c.ALIs[i]
		encodeIndexHead(e, a.Key, a.Attr, a.Continuous, a.Bounds)
		e.Count(len(a.Blocks))
		for _, rs := range a.Blocks {
			e.Count(len(rs))
			for _, r := range rs {
				e.Value(r.Key)
				e.Blob(r.Payload)
			}
		}
	}
	return e.Bytes()
}

// encodeIndexState renders one layered-index state (head plus per-block
// entries); Diverges also uses it to compare system indexes byte-wise.
func encodeIndexState(e *types.Encoder, x *IndexState) {
	encodeIndexHead(e, x.Key, x.Attr, x.Continuous, x.Bounds)
	e.Count(len(x.Blocks))
	for _, es := range x.Blocks {
		e.Count(len(es))
		for _, en := range es {
			e.Value(en.Key)
			e.Uint32(en.Pos)
		}
	}
}

func encodeIndexHead(e *types.Encoder, key, attr string, cont bool, bounds []float64) {
	e.Str(key)
	e.Str(attr)
	if cont {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
	e.Count(len(bounds))
	for _, b := range bounds {
		e.Float64(b)
	}
}

// Decode parses a checkpoint payload previously produced by Encode.
func Decode(buf []byte) (*Checkpoint, error) {
	d := types.NewDecoder(buf)
	magic, err := d.Uint32()
	if err != nil || magic != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver, err := d.Uint32()
	if err != nil || ver != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	c := &Checkpoint{TableIdx: make(map[string][]uint32)}
	if c.Height, err = d.Uint64(); err != nil {
		return nil, corrupt(err)
	}
	if c.Anchor, err = d.Bytes32(); err != nil {
		return nil, corrupt(err)
	}
	if c.LastTid, err = d.Uint64(); err != nil {
		return nil, corrupt(err)
	}
	if c.LastTs, err = d.Int64(); err != nil {
		return nil, corrupt(err)
	}

	n, err := count(d)
	if err != nil {
		return nil, err
	}
	c.Store = &storage.Meta{
		Headers: make([]types.BlockHeader, 0, n),
		Locs:    make([]storage.Location, 0, n),
		Lens:    make([]int64, 0, n),
		Stored:  make([]int64, 0, n),
		Comp:    make([]bool, 0, n),
		TxOffs:  make([][]uint32, 0, n),
	}
	for i := 0; i < n; i++ {
		h, err := types.DecodeBlockHeader(d)
		if err != nil {
			return nil, corrupt(err)
		}
		var loc storage.Location
		if loc.Segment, err = d.Uint32(); err != nil {
			return nil, corrupt(err)
		}
		if loc.Offset, err = d.Int64(); err != nil {
			return nil, corrupt(err)
		}
		bl, err := d.Int64()
		if err != nil {
			return nil, corrupt(err)
		}
		st, err := d.Int64()
		if err != nil {
			return nil, corrupt(err)
		}
		cf, err := d.Uint8()
		if err != nil || cf > 1 {
			return nil, fmt.Errorf("%w: bad compression flag", ErrCorrupt)
		}
		no, err := count(d)
		if err != nil {
			return nil, err
		}
		offs := make([]uint32, no)
		for j := range offs {
			if offs[j], err = d.Uint32(); err != nil {
				return nil, corrupt(err)
			}
		}
		c.Store.Headers = append(c.Store.Headers, h)
		c.Store.Locs = append(c.Store.Locs, loc)
		c.Store.Lens = append(c.Store.Lens, bl)
		c.Store.Stored = append(c.Store.Stored, st)
		c.Store.Comp = append(c.Store.Comp, cf == 1)
		c.Store.TxOffs = append(c.Store.TxOffs, offs)
	}

	if n, err = count(d); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		vs, err := d.Values()
		if err != nil {
			return nil, corrupt(err)
		}
		t, err := schema.DecodeDDL(vs)
		if err != nil {
			return nil, corrupt(err)
		}
		c.Tables = append(c.Tables, t)
	}
	if n, err = count(d); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		vs, err := d.Values()
		if err != nil {
			return nil, corrupt(err)
		}
		ct, err := contract.DecodeDeploy(vs)
		if err != nil {
			return nil, corrupt(err)
		}
		c.Contracts = append(c.Contracts, ct)
	}

	if n, err = count(d); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		k, err := d.Str()
		if err != nil {
			return nil, corrupt(err)
		}
		nb, err := count(d)
		if err != nil {
			return nil, err
		}
		blocks := make([]uint32, nb)
		for j := range blocks {
			if blocks[j], err = d.Uint32(); err != nil {
				return nil, corrupt(err)
			}
		}
		c.TableIdx[k] = blocks
	}

	if n, err = count(d); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var x IndexState
		if err := decodeIndexHead(d, &x.Key, &x.Attr, &x.Continuous, &x.Bounds); err != nil {
			return nil, err
		}
		nb, err := count(d)
		if err != nil {
			return nil, err
		}
		x.Blocks = make([][]layered.Entry, nb)
		for b := range x.Blocks {
			ne, err := count(d)
			if err != nil {
				return nil, err
			}
			if ne == 0 {
				continue
			}
			es := make([]layered.Entry, ne)
			for j := range es {
				if es[j].Key, err = d.Value(); err != nil {
					return nil, corrupt(err)
				}
				if es[j].Pos, err = d.Uint32(); err != nil {
					return nil, corrupt(err)
				}
			}
			x.Blocks[b] = es
		}
		c.Indexes = append(c.Indexes, x)
	}

	if n, err = count(d); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var a ALIState
		if err := decodeIndexHead(d, &a.Key, &a.Attr, &a.Continuous, &a.Bounds); err != nil {
			return nil, err
		}
		nb, err := count(d)
		if err != nil {
			return nil, err
		}
		a.Blocks = make([][]mbtree.Record, nb)
		for b := range a.Blocks {
			nr, err := count(d)
			if err != nil {
				return nil, err
			}
			if nr == 0 {
				continue
			}
			rs := make([]mbtree.Record, nr)
			for j := range rs {
				if rs[j].Key, err = d.Value(); err != nil {
					return nil, corrupt(err)
				}
				if rs[j].Payload, err = d.Blob(); err != nil {
					return nil, corrupt(err)
				}
			}
			a.Blocks[b] = rs
		}
		c.ALIs = append(c.ALIs, a)
	}

	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	if uint64(c.Store.Count()) != c.Height || c.Height == 0 {
		return nil, fmt.Errorf("%w: height %d covers %d blocks", ErrCorrupt, c.Height, c.Store.Count())
	}
	if c.Store.Headers[c.Height-1].Hash() != c.Anchor {
		return nil, fmt.Errorf("%w: anchor disagrees with embedded tip header", ErrCorrupt)
	}
	return c, nil
}

func decodeIndexHead(d *types.Decoder, key, attr *string, cont *bool, bounds *[]float64) error {
	var err error
	if *key, err = d.Str(); err != nil {
		return corrupt(err)
	}
	if *attr, err = d.Str(); err != nil {
		return corrupt(err)
	}
	b, err := d.Uint8()
	if err != nil {
		return corrupt(err)
	}
	*cont = b == 1
	n, err := count(d)
	if err != nil {
		return err
	}
	if n > 0 {
		bs := make([]float64, n)
		for i := range bs {
			if bs[i], err = d.Float64(); err != nil {
				return corrupt(err)
			}
		}
		*bounds = bs
	}
	return nil
}

// count reads a count prefix and bounds it by the remaining bytes —
// every counted element occupies at least one byte, so a count beyond
// Remaining proves corruption before any allocation happens.
func count(d *types.Decoder) (int, error) {
	n, err := d.Uint32()
	if err != nil {
		return 0, corrupt(err)
	}
	if int(n) > d.Remaining() {
		return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, n, d.Remaining())
	}
	return int(n), nil
}

func corrupt(err error) error { return fmt.Errorf("%w: %v", ErrCorrupt, err) }
