package snapshot

import (
	"bytes"
	"fmt"

	"sebdb/internal/types"
)

// Diverges cross-checks a peer-supplied checkpoint against a reference
// checkpoint derived locally from hash-verified blocks, comparing every
// chain-derived fact: pin, high-water marks, embedded headers, body
// lengths and transaction offsets, catalog, contracts, table bitmaps
// and the two system indexes. Node-local configuration is excluded —
// segment locations depend on the writer's SegmentSize, and user
// index/ALI states on which indexes an operator created and with what
// histogram depth. A nil result means the peer's checkpoint agrees with
// the chain on everything a fresh node would otherwise have to trust.
func Diverges(peer, ref *Checkpoint) error {
	if peer.Height != ref.Height {
		return fmt.Errorf("snapshot: peer checkpoint height %d, chain says %d", peer.Height, ref.Height)
	}
	if peer.Anchor != ref.Anchor {
		return fmt.Errorf("snapshot: peer checkpoint anchor diverges from the chain")
	}
	if peer.LastTid != ref.LastTid || peer.LastTs != ref.LastTs {
		return fmt.Errorf("snapshot: peer checkpoint high-water marks (tid %d, ts %d) diverge from the chain's (%d, %d)",
			peer.LastTid, peer.LastTs, ref.LastTid, ref.LastTs)
	}
	if peer.Store.Count() != ref.Store.Count() {
		return fmt.Errorf("snapshot: peer checkpoint covers %d blocks, chain says %d", peer.Store.Count(), ref.Store.Count())
	}
	for i := range ref.Store.Headers {
		if peer.Store.Headers[i].Hash() != ref.Store.Headers[i].Hash() {
			return fmt.Errorf("snapshot: peer checkpoint header %d is off the agreed chain", i)
		}
		if peer.Store.Lens[i] != ref.Store.Lens[i] {
			return fmt.Errorf("snapshot: peer checkpoint body length diverges at block %d", i)
		}
		if len(peer.Store.TxOffs[i]) != len(ref.Store.TxOffs[i]) {
			return fmt.Errorf("snapshot: peer checkpoint tx offsets diverge at block %d", i)
		}
		for j := range ref.Store.TxOffs[i] {
			if peer.Store.TxOffs[i][j] != ref.Store.TxOffs[i][j] {
				return fmt.Errorf("snapshot: peer checkpoint tx offsets diverge at block %d", i)
			}
		}
	}
	if len(peer.Tables) != len(ref.Tables) {
		return fmt.Errorf("snapshot: peer checkpoint carries %d tables, chain says %d", len(peer.Tables), len(ref.Tables))
	}
	for i := range ref.Tables {
		if !bytes.Equal(valuesBytes(peer.Tables[i].EncodeDDL()), valuesBytes(ref.Tables[i].EncodeDDL())) {
			return fmt.Errorf("snapshot: peer checkpoint table %q diverges from the chain", ref.Tables[i].Name)
		}
	}
	if len(peer.Contracts) != len(ref.Contracts) {
		return fmt.Errorf("snapshot: peer checkpoint carries %d contracts, chain says %d", len(peer.Contracts), len(ref.Contracts))
	}
	for i := range ref.Contracts {
		if !bytes.Equal(valuesBytes(peer.Contracts[i].EncodeDeploy()), valuesBytes(ref.Contracts[i].EncodeDeploy())) {
			return fmt.Errorf("snapshot: peer checkpoint contract %d diverges from the chain", i)
		}
	}
	if len(peer.TableIdx) != len(ref.TableIdx) {
		return fmt.Errorf("snapshot: peer checkpoint table-index carries %d keys, chain says %d", len(peer.TableIdx), len(ref.TableIdx))
	}
	for k, want := range ref.TableIdx {
		got, ok := peer.TableIdx[k]
		if !ok || len(got) != len(want) {
			return fmt.Errorf("snapshot: peer checkpoint table-index diverges on %q", k)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("snapshot: peer checkpoint table-index diverges on %q", k)
			}
		}
	}
	for _, key := range []string{".senid", ".tname"} {
		p, r := findIndex(peer.Indexes, key), findIndex(ref.Indexes, key)
		if r == nil {
			return fmt.Errorf("snapshot: reference checkpoint misses the system index %s", key)
		}
		if p == nil {
			return fmt.Errorf("snapshot: peer checkpoint misses the system index %s", key)
		}
		if !bytes.Equal(indexStateBytes(p), indexStateBytes(r)) {
			return fmt.Errorf("snapshot: peer checkpoint system index %s diverges from the chain", key)
		}
	}
	return nil
}

func findIndex(states []IndexState, key string) *IndexState {
	for i := range states {
		if states[i].Key == key {
			return &states[i]
		}
	}
	return nil
}

func valuesBytes(vs []types.Value) []byte {
	e := types.NewEncoder(128)
	e.Values(vs)
	return e.Bytes()
}

func indexStateBytes(x *IndexState) []byte {
	e := types.NewEncoder(1024)
	encodeIndexState(e, x)
	return e.Bytes()
}
