package snapshot

import "sebdb/internal/obs"

// Checkpoint lifecycle metrics, reported to the default registry.
// Loads are split by outcome so operators can see a node silently
// degrading to full replay ("miss" = no checkpoint, "corrupt" = CRC or
// structural failure discarded by design).
var (
	mWrites      = obs.Default.Counter("sebdb_snapshot_writes_total")
	mWriteBytes  = obs.Default.Counter("sebdb_snapshot_write_bytes_total")
	mLoadOK      = obs.Default.Counter(`sebdb_snapshot_loads_total{result="ok"}`)
	mLoadMiss    = obs.Default.Counter(`sebdb_snapshot_loads_total{result="miss"}`)
	mLoadCorrupt = obs.Default.Counter(`sebdb_snapshot_loads_total{result="corrupt"}`)
	mLoadBytes   = obs.Default.Counter("sebdb_snapshot_load_bytes_total")
)
