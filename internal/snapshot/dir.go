package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"sebdb/internal/faultfs"
	"sebdb/internal/types"
)

// DirName is the checkpoint directory created inside a data directory.
const DirName = "snapshots"

const manifestName = "MANIFEST"

// keepCheckpoints is how many checkpoint files GC retains: the one the
// manifest pins plus the previous one, so a crash mid-write can always
// fall back one generation.
const keepCheckpoints = 2

// Manifest pins the current checkpoint to a chain position.
type Manifest struct {
	// Height and Anchor mirror the checkpoint's pin.
	Height uint64
	Anchor types.Hash
	// File is the checkpoint file name within the directory.
	File string
	// Size and CRC describe File's payload (excluding its own CRC
	// trailer), letting fast-sync verify a transfer cheaply.
	Size uint64
	CRC  uint32
}

func (m *Manifest) encode() []byte {
	e := types.NewEncoder(64)
	e.Uint32(manifestMagic)
	e.Uint32(version)
	e.Uint64(m.Height)
	e.Bytes32(m.Anchor)
	e.Str(m.File)
	e.Uint64(m.Size)
	e.Uint32(m.CRC)
	body := e.Bytes()
	out := make([]byte, len(body)+4)
	copy(out, body)
	binary.BigEndian.PutUint32(out[len(body):], crc32.ChecksumIEEE(body))
	return out
}

func decodeManifest(buf []byte) (*Manifest, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short manifest", ErrCorrupt)
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: manifest CRC mismatch", ErrCorrupt)
	}
	d := types.NewDecoder(body)
	magic, err := d.Uint32()
	if err != nil || magic != manifestMagic {
		return nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	ver, err := d.Uint32()
	if err != nil || ver != version {
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, ver)
	}
	m := &Manifest{}
	if m.Height, err = d.Uint64(); err != nil {
		return nil, corrupt(err)
	}
	if m.Anchor, err = d.Bytes32(); err != nil {
		return nil, corrupt(err)
	}
	if m.File, err = d.Str(); err != nil {
		return nil, corrupt(err)
	}
	if m.File != filepath.Base(m.File) || m.File == "" {
		return nil, fmt.Errorf("%w: manifest file name %q escapes the directory", ErrCorrupt, m.File)
	}
	if m.Size, err = d.Uint64(); err != nil {
		return nil, corrupt(err)
	}
	if m.CRC, err = d.Uint32(); err != nil {
		return nil, corrupt(err)
	}
	return m, nil
}

// Dir manages the checkpoint directory of one data directory. All I/O
// goes through the injected filesystem so the faultfs crash matrix
// covers every write, rename and load step.
type Dir struct {
	fs   faultfs.FS
	path string
}

// NewDir returns a Dir over <dataDir>/snapshots using fs (nil means
// the real filesystem). No I/O happens until Write or Load.
func NewDir(fs faultfs.FS, dataDir string) *Dir {
	if fs == nil {
		fs = faultfs.OS()
	}
	return &Dir{fs: fs, path: filepath.Join(dataDir, DirName)}
}

// Path returns the checkpoint directory path.
func (d *Dir) Path() string { return d.path }

func ckptFileName(height uint64) string {
	return fmt.Sprintf("ckpt-%012d.snap", height)
}

// Write atomically persists a checkpoint and repoints the manifest at
// it, then garbage-collects checkpoints older than the retained set.
func (d *Dir) Write(c *Checkpoint) error {
	payload := c.Encode()
	crc := crc32.ChecksumIEEE(payload)
	blob := make([]byte, len(payload)+4)
	copy(blob, payload)
	binary.BigEndian.PutUint32(blob[len(payload):], crc)

	if err := d.fs.MkdirAll(d.path, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	name := ckptFileName(c.Height)
	if err := d.writeAtomic(name, blob); err != nil {
		return err
	}
	m := &Manifest{Height: c.Height, Anchor: c.Anchor, File: name, Size: uint64(len(payload)), CRC: crc}
	if err := d.writeAtomic(manifestName, m.encode()); err != nil {
		return err
	}
	mWrites.Inc()
	mWriteBytes.Add(uint64(len(blob)))
	return d.gc(name)
}

// writeAtomic writes name via a .tmp sibling, syncs, and renames into
// place — the only write protocol allowed in this package (enforced by
// the sebdb-vet atomicwrite analyzer).
func (d *Dir) writeAtomic(name string, blob []byte) error {
	tmp := filepath.Join(d.path, name+".tmp")
	f, err := d.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	_, err = f.Write(blob)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("snapshot: writing %s: %w", tmp, err)
	}
	if err := d.fs.Rename(tmp, filepath.Join(d.path, name)); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// gc removes checkpoint files and stale temp files beyond the retained
// set. Removal failures are reported but the checkpoint write already
// succeeded, so callers may treat the error as advisory.
func (d *Dir) gc(current string) error {
	entries, err := d.fs.ReadDir(d.path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	var snaps []string
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			if err := d.fs.Remove(filepath.Join(d.path, name)); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("snapshot: gc: %w", err)
			}
		case filepath.Ext(name) == ".snap":
			snaps = append(snaps, name)
		}
	}
	sort.Strings(snaps) // zero-padded heights sort chronologically
	// Retain the newest keepCheckpoints files; the manifest's current
	// target is among them by construction (it has the top height).
	for len(snaps) > keepCheckpoints {
		name := snaps[0]
		snaps = snaps[1:]
		if name == current {
			continue
		}
		if err := d.fs.Remove(filepath.Join(d.path, name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("snapshot: gc: %w", err)
		}
	}
	return firstErr
}

// Load returns the checkpoint the manifest pins, fully CRC-verified
// and decoded. A missing, corrupt or inconsistent checkpoint returns
// (nil, nil): the caller falls back to full replay, and the condition
// is visible on the sebdb_snapshot_loads_total{result=...} counters.
func (d *Dir) Load() (*Checkpoint, error) {
	m, payload, err := d.Raw()
	if err != nil || m == nil {
		return nil, err
	}
	c, err := Decode(payload)
	if err != nil {
		mLoadCorrupt.Inc()
		return nil, nil //nolint — corrupt checkpoints degrade to full replay by design
	}
	if c.Height != m.Height || c.Anchor != m.Anchor {
		mLoadCorrupt.Inc()
		return nil, nil
	}
	mLoadOK.Inc()
	mLoadBytes.Add(uint64(len(payload)))
	return c, nil
}

// Manifest returns the decoded manifest alone, without touching the
// (much larger) checkpoint file — cheap enough to call per request when
// validating a cached payload. A missing or corrupt manifest returns
// (nil, nil).
func (d *Dir) Manifest() (*Manifest, error) {
	buf, err := d.fs.ReadFile(filepath.Join(d.path, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			mLoadMiss.Inc()
			return nil, nil
		}
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	m, err := decodeManifest(buf)
	if err != nil {
		mLoadCorrupt.Inc()
		return nil, nil //nolint — corrupt manifest degrades to full replay by design
	}
	return m, nil
}

// Raw returns the manifest and the raw (CRC-stripped) checkpoint
// payload it pins, verifying the file CRC but not decoding — the form
// fast-sync serves to peers. A missing or corrupt checkpoint returns
// (nil, nil, nil).
func (d *Dir) Raw() (*Manifest, []byte, error) {
	m, err := d.Manifest()
	if err != nil || m == nil {
		return nil, nil, err
	}
	blob, err := d.fs.ReadFile(filepath.Join(d.path, m.File))
	if err != nil {
		mLoadCorrupt.Inc()
		return nil, nil, nil
	}
	if uint64(len(blob)) != m.Size+4 {
		mLoadCorrupt.Inc()
		return nil, nil, nil
	}
	payload, tail := blob[:m.Size], blob[m.Size:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(tail) || crc32.ChecksumIEEE(payload) != m.CRC {
		mLoadCorrupt.Inc()
		return nil, nil, nil
	}
	return m, payload, nil
}
