// Package pbft implements Practical Byzantine Fault Tolerance (Castro &
// Liskov, OSDI'99) as SEBDB's BFT consensus plug-in, standing in for the
// Tendermint component of the paper's evaluation (§VII-B) — Tendermint
// is a PBFT-family protocol, and the serial check-then-deliver path the
// paper identifies as its bottleneck is modelled here explicitly.
//
// The cluster runs n = 3f+1 replicas as goroutines exchanging messages
// through in-process inboxes. The normal case is the full three-phase
// protocol: the primary assigns a sequence number and broadcasts
// PRE-PREPARE; replicas broadcast PREPARE and, having collected 2f
// matching ones, COMMIT; a batch executes once 2f+1 COMMITs arrive and
// every lower sequence number has executed. A silent (crashed or
// Byzantine-muted) primary is detected by request timeout and replaced
// through a simplified view change.
package pbft

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/consensus"
	"sebdb/internal/obs"
	"sebdb/internal/parallel"
	"sebdb/internal/types"
)

// Options configures a cluster.
type Options struct {
	// F is the tolerated number of faulty replicas; the cluster has
	// 3F+1 replicas. Default 1 (4 replicas, the paper's deployment).
	F int
	// BatchSize caps transactions per proposal (default 10000, the
	// paper's Tendermint block size).
	BatchSize int
	// BatchTimeout proposes a non-empty partial batch after this delay
	// (default 200 ms).
	BatchTimeout time.Duration
	// ViewChangeTimeout is how long a replica waits for progress on a
	// pending request before suspecting the primary (default 1 s).
	ViewChangeTimeout time.Duration
	// RequireSigs makes the CheckTx step reject transactions without a
	// valid sender signature. The check runs once per proposed batch,
	// fanned out over Parallelism workers — rather than serially per
	// submission, the bottleneck the paper attributes to Tendermint's
	// check-then-deliver path.
	RequireSigs bool
	// Parallelism bounds the batch signature-verification fan-out.
	// Zero means GOMAXPROCS.
	Parallelism int
	// Now supplies block timestamps (default clock.UnixMicro). Injected
	// so replays and tests can pin the timestamps replicas agree on.
	Now clock.Source
	// Log receives structured consensus events (view changes, batch
	// rejections). Nil disables them.
	Log *obs.Logger
}

func (o *Options) fill() {
	if o.F == 0 {
		o.F = 1
	}
	if o.BatchSize == 0 {
		o.BatchSize = 10000
	}
	if o.BatchTimeout == 0 {
		o.BatchTimeout = 200 * time.Millisecond
	}
	if o.ViewChangeTimeout == 0 {
		o.ViewChangeTimeout = time.Second
	}
	if o.Parallelism == 0 {
		o.Parallelism = parallel.Default()
	}
	if o.Now == nil {
		o.Now = clock.UnixMicro
	}
}

type msgKind int

const (
	msgPrePrepare msgKind = iota
	msgPrepare
	msgCommit
	msgViewChange
	msgNewView
)

type message struct {
	kind   msgKind
	view   int
	seq    int
	digest [32]byte
	batch  []*types.Transaction // pre-prepare and new-view only
	from   int
}

// instance tracks one sequence number's three-phase state.
type instance struct {
	digest    [32]byte
	batch     []*types.Transaction
	prepares  map[int]bool
	commits   map[int]bool
	committed bool
}

type request struct {
	tx   *types.Transaction
	done chan error
}

// replica is one PBFT node.
type replica struct {
	id      int
	cluster *Cluster
	crashed bool

	// view is read by the cluster batcher while the replica loop
	// mutates it, hence atomic.
	view     atomic.Int64
	log      map[int]*instance
	executed int // highest contiguously executed seq
	// done records digests already executed, so a batch re-proposed
	// after a view change does not execute twice.
	done  map[[32]byte]bool
	inbox chan message

	// primary-only state
	nextSeq int

	// view-change state
	vcVotes map[int]map[int]bool // newView -> voters
}

// Cluster is a PBFT deployment driving one committer per replica.
type Cluster struct {
	opts     Options
	n        int
	replicas []*replica
	commit   []consensus.Committer

	mu       sync.Mutex
	queue    []request
	inFlight map[[32]byte][]request // digest -> waiting clients
	running  bool
	stopCh   chan struct{}
	wg       sync.WaitGroup

	// curView is the highest view any live replica has adopted; the
	// batcher reads it to address proposals and view-change votes.
	// Reading a single replica's view instead would wedge the cluster
	// once that replica crashes and stops adopting new views.
	curView atomic.Int64

	progressCh chan struct{} // signalled on every execution, feeds the view-change timer
}

// New builds a cluster over the given committers; len(committers) must
// be 3F+1.
func New(opts Options, committers []consensus.Committer) (*Cluster, error) {
	opts.fill()
	n := 3*opts.F + 1
	if len(committers) != n {
		return nil, fmt.Errorf("pbft: need %d committers for f=%d, got %d", n, opts.F, len(committers))
	}
	c := &Cluster{
		opts:       opts,
		n:          n,
		commit:     committers,
		inFlight:   make(map[[32]byte][]request),
		progressCh: make(chan struct{}, 1),
	}
	for i := 0; i < n; i++ {
		c.replicas = append(c.replicas, &replica{
			id:      i,
			cluster: c,
			log:     make(map[int]*instance),
			done:    make(map[[32]byte]bool),
			inbox:   make(chan message, 4096),
			vcVotes: make(map[int]map[int]bool),
		})
	}
	return c, nil
}

// Crash silences a replica (stops processing and emitting messages),
// simulating a crashed or Byzantine-muted node. Must be called before
// Start or between requests.
func (c *Cluster) Crash(id int) {
	c.replicas[id].crashed = true
}

// View returns replica 0's current view (tests observe view changes).
func (c *Cluster) View() int { return int(c.replicas[0].view.Load()) }

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("pbft: cluster stopped")

// ErrRejected is returned when CheckTx rejects a transaction.
var ErrRejected = errors.New("pbft: transaction rejected by CheckTx")

// Start launches all replica loops and the primary batcher.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return errors.New("pbft: already started")
	}
	c.running = true
	c.stopCh = make(chan struct{})
	for _, r := range c.replicas {
		c.wg.Add(1)
		go r.loop()
	}
	c.wg.Add(1)
	go c.batcher()
	return nil
}

// Stop shuts the cluster down; pending submissions fail with ErrStopped.
func (c *Cluster) Stop() error {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return nil
	}
	c.running = false
	close(c.stopCh)
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rs := range c.inFlight {
		for _, r := range rs {
			r.done <- ErrStopped
		}
	}
	for _, r := range c.queue {
		r.done <- ErrStopped
	}
	c.inFlight = make(map[[32]byte][]request)
	c.queue = nil
	return nil
}

// Submit queues a transaction and blocks until its batch executes (the
// Tendermint-style reply) — or until the batch CheckTx step rejects it
// with ErrRejected. Signature verification happens at batch-cut time,
// fanned out over the worker pool, so submission itself is queue-only.
func (c *Cluster) Submit(tx *types.Transaction) error {
	done := make(chan error, 1)
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return ErrStopped
	}
	c.queue = append(c.queue, request{tx: tx, done: done})
	c.mu.Unlock()
	return <-done
}

// batcher cuts proposals for the current primary.
func (c *Cluster) batcher() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.BatchTimeout)
	defer ticker.Stop()
	vcTimer := time.NewTicker(c.opts.ViewChangeTimeout)
	defer vcTimer.Stop()
	// Stall detection counts vcTimer ticks instead of comparing wall
	// clock readings: two consecutive ticks with pending work and no
	// execution in between span at least one full ViewChangeTimeout.
	stalledTicks := 0
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.progressCh:
			stalledTicks = 0
		case <-vcTimer.C:
			c.mu.Lock()
			pending := len(c.queue) > 0 || len(c.inFlight) > 0
			c.mu.Unlock()
			if !pending {
				stalledTicks = 0
				continue
			}
			stalledTicks++
			if stalledTicks >= 2 {
				c.startViewChange()
				stalledTicks = 0
			}
		case <-ticker.C:
			c.propose()
		}
	}
}

// propose hands the queued requests to the current primary, running the
// batch CheckTx step first when RequireSigs is set.
func (c *Cluster) propose() {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return
	}
	n := len(c.queue)
	if n > c.opts.BatchSize {
		n = c.opts.BatchSize
	}
	batch := c.queue[:n:n]
	c.queue = c.queue[n:]
	c.mu.Unlock()

	if c.opts.RequireSigs {
		start := c.opts.Now()
		batch = c.checkBatch(batch)
		mCheckMicros.Observe(c.opts.Now() - start)
		if len(batch) == 0 {
			return
		}
	}
	txs := make([]*types.Transaction, len(batch))
	for i, r := range batch {
		txs[i] = r.tx
	}
	d := batchDigest(txs)
	c.mu.Lock()
	c.inFlight[d] = append(c.inFlight[d], batch...)
	view := int(c.curView.Load())
	c.mu.Unlock()

	primary := c.replicas[view%c.n]
	primary.send(message{kind: msgPrePrepare, view: view, batch: txs, from: -1})
}

// checkBatch verifies the batch's sender signatures with the worker
// pool, replies ErrRejected to the failing submissions, and returns the
// surviving requests in their original order. ed25519 verification is
// CPU-bound and per-transaction independent, so the fan-out scales the
// step the paper measures as Tendermint's serial bottleneck.
func (c *Cluster) checkBatch(batch []request) []request {
	ok := make([]bool, len(batch))
	// Verification cannot fail as a task, so Ordered's error is always
	// nil; the per-index results land in ok.
	_ = parallel.Ordered(c.opts.Parallelism, len(batch), //sebdb:ignore-err tasks always return nil; results land in ok
		func(i int) (bool, error) { return batch[i].tx.VerifySig(), nil },
		func(i int, v bool) error { ok[i] = v; return nil })
	kept := make([]request, 0, len(batch))
	for i, r := range batch {
		if ok[i] {
			kept = append(kept, r)
			continue
		}
		mRejected.Inc()
		c.opts.Log.Warn("transaction rejected",
			"sender", r.tx.SenID, "table", r.tx.Tname, "reason", "bad signature")
		r.done <- ErrRejected
	}
	return kept
}

// startViewChange broadcasts VIEW-CHANGE votes from every live replica
// (the simplified detector lives in the cluster batcher rather than in
// per-replica timers).
func (c *Cluster) startViewChange() {
	newView := int(c.curView.Load()) + 1
	c.opts.Log.Warn("primary suspected, starting view change", "new_view", newView)
	for _, r := range c.replicas {
		if !r.crashed {
			c.broadcast(message{kind: msgViewChange, view: newView, from: r.id})
		}
	}
}

func (c *Cluster) broadcast(m message) {
	for _, r := range c.replicas {
		r.send(m)
	}
}

func (r *replica) send(m message) {
	if r.crashed {
		return
	}
	select {
	case r.inbox <- m:
	case <-r.cluster.stopCh:
	}
}

func batchDigest(txs []*types.Transaction) [32]byte {
	e := types.NewEncoder(256 * len(txs))
	for _, tx := range txs {
		tx.Encode(e)
	}
	return sha256.Sum256(e.Bytes())
}

// loop is one replica's event loop.
func (r *replica) loop() {
	defer r.cluster.wg.Done()
	for {
		select {
		case <-r.cluster.stopCh:
			return
		case m := <-r.inbox:
			if r.crashed {
				continue
			}
			r.handle(m)
		}
	}
}

func (r *replica) inst(seq int) *instance {
	in, ok := r.log[seq]
	if !ok {
		in = &instance{prepares: map[int]bool{}, commits: map[int]bool{}}
		r.log[seq] = in
	}
	return in
}

func (r *replica) handle(m message) {
	c := r.cluster
	switch m.kind {
	case msgPrePrepare:
		view := int(r.view.Load())
		// Only the current primary assigns sequence numbers; the message
		// addressed to it carries no seq yet (from == -1).
		if m.from == -1 {
			if r.id != view%c.n || m.view != view {
				// Not primary of this view: ignore; the view-change timer
				// recovers the request.
				return
			}
			r.nextSeq++
			m.seq = r.nextSeq
			m.digest = batchDigest(m.batch)
			m.from = r.id
			c.broadcast(m)
			return
		}
		if m.view != view || m.from != view%c.n {
			return
		}
		in := r.inst(m.seq)
		in.batch = m.batch
		in.digest = m.digest
		c.broadcast(message{kind: msgPrepare, view: view, seq: m.seq, digest: m.digest, from: r.id})
	case msgPrepare:
		if m.view != int(r.view.Load()) {
			return
		}
		in := r.inst(m.seq)
		in.prepares[m.from] = true
		// Prepared: 2f PREPAREs matching the pre-prepare.
		if len(in.prepares) >= 2*c.opts.F && in.batch != nil && !in.commits[r.id] {
			in.commits[r.id] = true
			c.broadcast(message{kind: msgCommit, view: int(r.view.Load()), seq: m.seq, digest: m.digest, from: r.id})
		}
	case msgCommit:
		if m.view != int(r.view.Load()) {
			return
		}
		in := r.inst(m.seq)
		in.commits[m.from] = true
		if len(in.commits) >= 2*c.opts.F+1 && in.batch != nil && !in.committed {
			in.committed = true
			r.executeReady()
		}
	case msgViewChange:
		votes := r.vcVotes[m.view]
		if votes == nil {
			votes = map[int]bool{}
			r.vcVotes[m.view] = votes
		}
		votes[m.from] = true
		if len(votes) >= 2*c.opts.F+1 && m.view > int(r.view.Load()) {
			r.view.Store(int64(m.view))
			// Lift the cluster-level view so the batcher addresses the
			// new primary.
			for {
				cur := c.curView.Load()
				if int64(m.view) <= cur {
					break
				}
				if c.curView.CompareAndSwap(cur, int64(m.view)) {
					mViewChanges.Inc()
					c.opts.Log.Info("view adopted",
						"view", m.view, "primary", m.view%c.n)
					break
				}
			}
			// The new primary re-proposes in-flight batches.
			if r.id == m.view%c.n {
				r.nextSeq = r.executed
				c.mu.Lock()
				var batches [][]*types.Transaction
				for _, reqs := range c.inFlight {
					txs := make([]*types.Transaction, len(reqs))
					for i, q := range reqs {
						txs[i] = q.tx
					}
					batches = append(batches, txs)
				}
				c.mu.Unlock()
				for _, b := range batches {
					r.send(message{kind: msgPrePrepare, view: m.view, batch: b, from: -1})
				}
			}
		}
	}
}

// executeReady applies committed instances in sequence order.
func (r *replica) executeReady() {
	c := r.cluster
	for {
		in, ok := r.log[r.executed+1]
		if !ok || !in.committed {
			return
		}
		r.executed++
		var err error
		if !r.done[in.digest] {
			r.done[in.digest] = true
			start := c.opts.Now()
			_, err = c.commit[r.id].CommitBlock(cloneTxs(in.batch), start)
			mBatches.Inc()
			mBatchTxs.Observe(int64(len(in.batch)))
			mCommitMicros.Observe(c.opts.Now() - start)
		}

		// Replica 0 acts as the client-facing replier: in full PBFT the
		// client waits for f+1 matching replies; with in-process replicas
		// executing deterministically, one reply observation suffices.
		if r.id == 0 {
			c.mu.Lock()
			reqs := c.inFlight[in.digest]
			delete(c.inFlight, in.digest)
			c.mu.Unlock()
			for _, q := range reqs {
				q.done <- err
			}
			select {
			case c.progressCh <- struct{}{}:
			default:
			}
		}
	}
}

func cloneTxs(txs []*types.Transaction) []*types.Transaction {
	out := make([]*types.Transaction, len(txs))
	for i, tx := range txs {
		cp := *tx
		out[i] = &cp
	}
	return out
}

var _ consensus.Consensus = (*Cluster)(nil)
