package pbft

import (
	"crypto/ed25519"
	"sync"
	"testing"
	"time"

	"sebdb/internal/consensus"
	"sebdb/internal/types"
)

// memCommitter records committed batches.
type memCommitter struct {
	mu     sync.Mutex
	blocks [][]*types.Transaction
	height uint64
}

func (m *memCommitter) CommitBlock(txs []*types.Transaction, ts int64) (*types.Block, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocks = append(m.blocks, txs)
	b := types.NewBlock(nil, nil, ts, "mem")
	b.Header.Height = m.height
	m.height++
	return b, nil
}

func (m *memCommitter) total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, b := range m.blocks {
		n += len(b)
	}
	return n
}

func committers(n int) ([]consensus.Committer, []*memCommitter) {
	mems := make([]*memCommitter, n)
	out := make([]consensus.Committer, n)
	for i := range mems {
		mems[i] = &memCommitter{}
		out[i] = mems[i]
	}
	return out, mems
}

func tx(i int) *types.Transaction {
	return &types.Transaction{Ts: int64(i), SenID: "c", Tname: "t",
		Args: []types.Value{types.Int(int64(i))}}
}

func TestNormalCaseCommitsEverywhere(t *testing.T) {
	cs, mems := committers(4)
	cl, err := New(Options{F: 1, BatchSize: 8, BatchTimeout: 10 * time.Millisecond}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := cl.Submit(tx(i)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	// Wait for the non-replying replicas to finish executing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, m := range mems {
			if m.total() != 40 {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, m := range mems {
		if m.total() != 40 {
			t.Errorf("replica %d committed %d of 40", i, m.total())
		}
	}
	// All replicas agree on batch boundaries and order.
	for i := 1; i < 4; i++ {
		mems[0].mu.Lock()
		mems[i].mu.Lock()
		if len(mems[0].blocks) != len(mems[i].blocks) {
			t.Errorf("replica %d has %d blocks, replica 0 has %d",
				i, len(mems[i].blocks), len(mems[0].blocks))
		} else {
			for b := range mems[0].blocks {
				if len(mems[0].blocks[b]) != len(mems[i].blocks[b]) {
					t.Errorf("batch %d sizes differ on replica %d", b, i)
				}
			}
		}
		mems[i].mu.Unlock()
		mems[0].mu.Unlock()
	}
}

func TestToleratesCrashedBackup(t *testing.T) {
	cs, mems := committers(4)
	cl, _ := New(Options{F: 1, BatchSize: 4, BatchTimeout: 10 * time.Millisecond}, cs)
	cl.Crash(3) // a backup, not the primary (view 0 → primary 0)
	cl.Start()
	defer cl.Stop()
	for i := 0; i < 8; i++ {
		if err := cl.Submit(tx(i)); err != nil {
			t.Fatalf("submit with crashed backup: %v", err)
		}
	}
	if mems[0].total() != 8 {
		t.Errorf("replica 0 committed %d", mems[0].total())
	}
	if mems[3].total() != 0 {
		t.Errorf("crashed replica committed %d", mems[3].total())
	}
}

func TestViewChangeOnCrashedPrimary(t *testing.T) {
	cs, mems := committers(4)
	cl, _ := New(Options{
		F: 1, BatchSize: 4,
		BatchTimeout:      10 * time.Millisecond,
		ViewChangeTimeout: 100 * time.Millisecond,
	}, cs)
	cl.Crash(0) // the view-0 primary
	cl.Start()
	defer cl.Stop()

	done := make(chan error, 1)
	go func() { done <- cl.Submit(tx(1)) }()
	select {
	case err := <-done:
		// Replica 0 is crashed, so the client reply path (replica 0)
		// never fires; we instead verify commitment below.
		_ = err
	case <-time.After(3 * time.Second):
	}
	// The view must have moved past 0 and live replicas must commit.
	deadline := time.Now().Add(3 * time.Second)
	committed := false
	for time.Now().Before(deadline) {
		if mems[1].total() >= 1 && mems[2].total() >= 1 && mems[3].total() >= 1 {
			committed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !committed {
		t.Fatalf("live replicas did not commit after view change: %d/%d/%d",
			mems[1].total(), mems[2].total(), mems[3].total())
	}
	if v := cl.replicas[1].view.Load(); v == 0 {
		t.Error("view did not advance")
	}
}

func TestRequireSigs(t *testing.T) {
	cs, _ := committers(4)
	cl, _ := New(Options{F: 1, BatchTimeout: 5 * time.Millisecond, RequireSigs: true}, cs)
	cl.Start()
	defer cl.Stop()
	if err := cl.Submit(tx(1)); err != ErrRejected {
		t.Errorf("unsigned tx: err = %v, want ErrRejected", err)
	}
	key := ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
	signed := tx(2)
	signed.Sign(key)
	if err := cl.Submit(signed); err != nil {
		t.Errorf("signed tx rejected: %v", err)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	cs, _ := committers(4)
	cl, _ := New(Options{F: 1}, cs)
	cl.Start()
	cl.Stop()
	if err := cl.Submit(tx(1)); err != ErrStopped {
		t.Errorf("err = %v", err)
	}
	if err := cl.Stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
}

func TestNewValidatesSize(t *testing.T) {
	cs, _ := committers(3)
	if _, err := New(Options{F: 1}, cs); err == nil {
		t.Error("3 committers for f=1 accepted")
	}
}

// TestLivenessAfterViewChange submits new requests after the crashed
// primary was replaced: the batcher must address the new primary, not
// keep proposing to the dead one (regression for a bug where the
// cluster view was read from the crashed replica).
func TestLivenessAfterViewChange(t *testing.T) {
	cs, mems := committers(4)
	cl, _ := New(Options{
		F: 1, BatchSize: 4,
		BatchTimeout:      10 * time.Millisecond,
		ViewChangeTimeout: 100 * time.Millisecond,
	}, cs)
	cl.Crash(0)
	cl.Start()
	defer cl.Stop()

	// Trigger the view change with a first request.
	go cl.Submit(tx(1))
	deadline := time.Now().Add(3 * time.Second)
	for cl.curView.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if cl.curView.Load() == 0 {
		t.Fatal("view change never happened")
	}

	// New submissions must now commit on the live replicas.
	before := mems[1].total()
	go cl.Submit(tx(2))
	go cl.Submit(tx(3))
	deadline = time.Now().Add(3 * time.Second)
	for mems[1].total() < before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if mems[1].total() < before+2 {
		t.Fatalf("post-view-change submissions stalled: %d -> %d",
			before, mems[1].total())
	}
}
