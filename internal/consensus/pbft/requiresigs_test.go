package pbft

import (
	"crypto/ed25519"
	"sync"
	"testing"
	"time"
)

// TestRequireSigsMixedBatch queues interleaved signed and unsigned
// transactions: the propose-stage batch check must hand ErrRejected to
// exactly the unsigned submitters and drive consensus over the signed
// remainder on every replica. (Proposals are cut on the batch timer, so
// the stream may span several proposals; the per-submitter verdicts and
// replica totals are timing-independent.)
func TestRequireSigsMixedBatch(t *testing.T) {
	key := ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
	cs, mems := committers(4)
	cl, err := New(Options{F: 1, BatchSize: 8, BatchTimeout: 10 * time.Millisecond,
		RequireSigs: true, Parallelism: 4}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	errs := make([]error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := tx(i)
			if i%2 == 0 {
				tr.Sign(key)
			}
			errs[i] = cl.Submit(tr)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if i%2 == 0 && err != nil {
			t.Errorf("signed tx %d: %v", i, err)
		}
		if i%2 == 1 && err != ErrRejected {
			t.Errorf("unsigned tx %d: err = %v, want ErrRejected", i, err)
		}
	}
	for r, m := range mems {
		if got := m.total(); got != 4 {
			t.Errorf("replica %d committed %d txs, want the 4 signed ones", r, got)
		}
	}
}
