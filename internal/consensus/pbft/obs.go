package pbft

import "sebdb/internal/obs"

// PBFT metrics, reported to the default registry. View changes count
// cluster-level view lifts (once per adopted view, not per replica);
// commit latency is one replica's CommitBlock of a decided batch.
var (
	mBatches      = obs.Default.Counter("sebdb_pbft_batches_total")
	mBatchTxs     = obs.Default.Histogram("sebdb_pbft_batch_txs", obs.BatchSizeBounds...)
	mCommitMicros = obs.Default.Histogram("sebdb_pbft_commit_micros")
	mViewChanges  = obs.Default.Counter("sebdb_pbft_view_changes_total")
	// Batch CheckTx: wall time of one batch's parallel signature sweep,
	// and how many submissions it rejected.
	mCheckMicros = obs.Default.Histogram("sebdb_pbft_checktx_micros")
	mRejected    = obs.Default.Counter("sebdb_pbft_rejected_txs_total")
)
