package kafka

import "sebdb/internal/obs"

// Ordering-service metrics, reported to the default registry. Batch
// sizes use the coarse batch-size bounds; commit latency is the time
// (broker clock) spent fanning one cut batch to every subscriber.
var (
	mBatches      = obs.Default.Counter("sebdb_kafka_batches_total")
	mBatchTxs     = obs.Default.Histogram("sebdb_kafka_batch_txs", obs.BatchSizeBounds...)
	mCommitMicros = obs.Default.Histogram("sebdb_kafka_commit_micros")
	// Batch CheckTx (RequireSigs only): wall time of one batch's
	// parallel signature sweep, and how many submissions it rejected.
	mCheckMicros = obs.Default.Histogram("sebdb_kafka_checktx_micros")
	mRejected    = obs.Default.Counter("sebdb_kafka_rejected_txs_total")
)
