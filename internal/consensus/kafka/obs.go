package kafka

import "sebdb/internal/obs"

// Ordering-service metrics, reported to the default registry. Batch
// sizes use the coarse batch-size bounds; commit latency is the time
// (broker clock) spent fanning one cut batch to every subscriber.
var (
	mBatches      = obs.Default.Counter("sebdb_kafka_batches_total")
	mBatchTxs     = obs.Default.Histogram("sebdb_kafka_batch_txs", obs.BatchSizeBounds...)
	mCommitMicros = obs.Default.Histogram("sebdb_kafka_commit_micros")
)
