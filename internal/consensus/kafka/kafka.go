// Package kafka implements SEBDB's Kafka-style ordering service: a
// crash-fault-tolerant (non-BFT) total-order broker. Transactions are
// published to one topic partition; the broker cuts a batch when either
// BatchSize transactions accumulate or BatchTimeout elapses (the
// paper's §VII-B setting: 200 transactions / 200 ms), then delivers the
// batch to every subscribed node, which packages it as the next block.
// A single delivery goroutine packages and appends — the same
// serialisation point the paper identifies as the throughput ceiling.
package kafka

import (
	"errors"
	"sync"
	"time"

	"sebdb/internal/clock"
	"sebdb/internal/consensus"
	"sebdb/internal/obs"
	"sebdb/internal/parallel"
	"sebdb/internal/types"
)

// Options configures the broker.
type Options struct {
	// BatchSize cuts a batch when this many transactions are pending
	// (default 200).
	BatchSize int
	// BatchTimeout cuts a non-empty batch after this delay even if it is
	// not full (default 200 ms).
	BatchTimeout time.Duration
	// RequireSigs makes the broker reject transactions without a valid
	// sender signature at batch-cut time, verified in parallel over
	// Parallelism workers. Default off — a Kafka-style orderer normally
	// trusts its publishers and leaves verification to the peers.
	RequireSigs bool
	// Parallelism bounds the batch signature-verification fan-out.
	// Zero means GOMAXPROCS.
	Parallelism int
	// Now supplies block timestamps (default clock.UnixMicro). Injected
	// so replays and tests can pin the timestamps subscribers agree on.
	Now clock.Source
	// Log receives structured broker events (batch rejections). Nil
	// disables them.
	Log *obs.Logger
}

func (o *Options) fill() {
	if o.BatchSize == 0 {
		o.BatchSize = 200
	}
	if o.BatchTimeout == 0 {
		o.BatchTimeout = 200 * time.Millisecond
	}
	if o.Parallelism == 0 {
		o.Parallelism = parallel.Default()
	}
	if o.Now == nil {
		o.Now = clock.UnixMicro
	}
}

type pending struct {
	tx   *types.Transaction
	done chan error
}

// Broker is the single-partition ordering service.
type Broker struct {
	opts Options

	mu          sync.Mutex
	subscribers []consensus.Committer
	queue       []pending
	running     bool
	stopCh      chan struct{}
	wakeCh      chan struct{}
	doneCh      chan struct{}
}

// ErrStopped is returned by Submit after the broker stops.
var ErrStopped = errors.New("kafka: broker stopped")

// ErrRejected is returned by Submit when RequireSigs is set and the
// transaction carries no valid sender signature.
var ErrRejected = errors.New("kafka: transaction rejected: invalid sender signature")

// New returns a broker with the given options.
func New(opts Options) *Broker {
	opts.fill()
	return &Broker{opts: opts}
}

// Subscribe registers a node's committer; every decided batch is
// delivered to all subscribers in the same order. Must be called before
// Start.
func (b *Broker) Subscribe(c consensus.Committer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subscribers = append(b.subscribers, c)
}

// Start launches the batching loop.
func (b *Broker) Start() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.running {
		return errors.New("kafka: already started")
	}
	b.running = true
	b.stopCh = make(chan struct{})
	b.wakeCh = make(chan struct{}, 1)
	b.doneCh = make(chan struct{})
	go b.run()
	return nil
}

// Stop drains the queue and shuts the broker down.
func (b *Broker) Stop() error {
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return nil
	}
	b.running = false
	close(b.stopCh)
	b.mu.Unlock()
	<-b.doneCh
	return nil
}

// Submit publishes a transaction and blocks until its batch is
// committed on every subscriber.
func (b *Broker) Submit(tx *types.Transaction) error {
	done := make(chan error, 1)
	b.mu.Lock()
	if !b.running {
		b.mu.Unlock()
		return ErrStopped
	}
	b.queue = append(b.queue, pending{tx: tx, done: done})
	full := len(b.queue) >= b.opts.BatchSize
	b.mu.Unlock()
	if full {
		select {
		case b.wakeCh <- struct{}{}:
		default:
		}
	}
	return <-done
}

// run is the single packaging goroutine.
func (b *Broker) run() {
	defer close(b.doneCh)
	timer := time.NewTimer(b.opts.BatchTimeout)
	defer timer.Stop()
	for {
		select {
		case <-b.stopCh:
			b.cut() // drain
			b.failRemaining()
			return
		case <-b.wakeCh:
			b.cut()
		case <-timer.C:
			b.cut()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(b.opts.BatchTimeout)
	}
}

// cut delivers full batches while the queue holds at least BatchSize
// transactions, then one final partial batch (timeout semantics).
func (b *Broker) cut() {
	for {
		b.mu.Lock()
		n := len(b.queue)
		if n == 0 {
			b.mu.Unlock()
			return
		}
		if n > b.opts.BatchSize {
			n = b.opts.BatchSize
		}
		batch := b.queue[:n:n]
		b.queue = b.queue[n:]
		subs := b.subscribers
		b.mu.Unlock()

		// full is decided before signature filtering: a cut that drained a
		// partial queue stays the last one even if rejections shrank it.
		full := len(batch) >= b.opts.BatchSize
		if b.opts.RequireSigs {
			start := b.opts.Now()
			batch = b.checkBatch(batch)
			mCheckMicros.Observe(b.opts.Now() - start)
		}
		if len(batch) == 0 {
			if !full {
				return
			}
			continue
		}

		txs := make([]*types.Transaction, len(batch))
		for i, p := range batch {
			txs[i] = p.tx
		}
		ts := b.opts.Now()
		mBatches.Inc()
		mBatchTxs.Observe(int64(len(txs)))
		var err error
		for _, sub := range subs {
			// Each node packages the identical ordered batch; the clones
			// keep per-node Tid assignment from aliasing across engines.
			if _, e := sub.CommitBlock(cloneTxs(txs), ts); e != nil && err == nil {
				err = e
			}
		}
		mCommitMicros.Observe(b.opts.Now() - ts)
		for _, p := range batch {
			p.done <- err
		}
		if !full {
			return
		}
	}
}

// checkBatch verifies the batch's sender signatures with the worker
// pool, replies ErrRejected to the failing submissions, and returns the
// survivors in their original order.
func (b *Broker) checkBatch(batch []pending) []pending {
	ok := make([]bool, len(batch))
	// Verification cannot fail as a task, so Ordered's error is always
	// nil; the per-index results land in ok.
	_ = parallel.Ordered(b.opts.Parallelism, len(batch), //sebdb:ignore-err tasks always return nil; results land in ok
		func(i int) (bool, error) { return batch[i].tx.VerifySig(), nil },
		func(i int, v bool) error { ok[i] = v; return nil })
	kept := make([]pending, 0, len(batch))
	for i, p := range batch {
		if ok[i] {
			kept = append(kept, p)
			continue
		}
		mRejected.Inc()
		b.opts.Log.Warn("transaction rejected",
			"sender", p.tx.SenID, "table", p.tx.Tname, "reason", "bad signature")
		p.done <- ErrRejected
	}
	return kept
}

func (b *Broker) failRemaining() {
	b.mu.Lock()
	rest := b.queue
	b.queue = nil
	b.mu.Unlock()
	for _, p := range rest {
		p.done <- ErrStopped
	}
}

func cloneTxs(txs []*types.Transaction) []*types.Transaction {
	out := make([]*types.Transaction, len(txs))
	for i, tx := range txs {
		c := *tx
		out[i] = &c
	}
	return out
}

var _ consensus.Consensus = (*Broker)(nil)
