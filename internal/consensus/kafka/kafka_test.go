package kafka

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sebdb/internal/types"
)

// memCommitter records committed batches.
type memCommitter struct {
	mu     sync.Mutex
	blocks [][]*types.Transaction
	height uint64
	calls  atomic.Int64
}

func (m *memCommitter) CommitBlock(txs []*types.Transaction, ts int64) (*types.Block, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls.Add(1)
	m.blocks = append(m.blocks, txs)
	b := types.NewBlock(nil, nil, ts, "mem")
	b.Header.Height = m.height
	m.height++
	return b, nil
}

func (m *memCommitter) total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, b := range m.blocks {
		n += len(b)
	}
	return n
}

func tx(i int) *types.Transaction {
	return &types.Transaction{Ts: int64(i), SenID: "c", Tname: "t",
		Args: []types.Value{types.Int(int64(i))}}
}

func TestBatchBySize(t *testing.T) {
	c := &memCommitter{}
	b := New(Options{BatchSize: 10, BatchTimeout: time.Hour})
	b.Subscribe(c)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Submit(tx(i)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := c.total(); got != 30 {
		t.Errorf("committed %d txs, want 30", got)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, blk := range c.blocks {
		if len(blk) > 10 {
			t.Errorf("batch %d has %d txs (> BatchSize)", i, len(blk))
		}
	}
}

func TestBatchByTimeout(t *testing.T) {
	c := &memCommitter{}
	b := New(Options{BatchSize: 1000, BatchTimeout: 20 * time.Millisecond})
	b.Subscribe(c)
	b.Start()
	defer b.Stop()
	start := time.Now()
	if err := b.Submit(tx(1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("timeout batch took %v", elapsed)
	}
	if got := c.total(); got != 1 {
		t.Errorf("committed %d", got)
	}
}

func TestAllSubscribersReceiveSameOrder(t *testing.T) {
	c1, c2 := &memCommitter{}, &memCommitter{}
	b := New(Options{BatchSize: 5, BatchTimeout: 10 * time.Millisecond})
	b.Subscribe(c1)
	b.Subscribe(c2)
	b.Start()
	defer b.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 23; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Submit(tx(i))
		}(i)
	}
	wg.Wait()
	if c1.total() != 23 || c2.total() != 23 {
		t.Fatalf("totals %d/%d", c1.total(), c2.total())
	}
	c1.mu.Lock()
	c2.mu.Lock()
	defer c1.mu.Unlock()
	defer c2.mu.Unlock()
	if len(c1.blocks) != len(c2.blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(c1.blocks), len(c2.blocks))
	}
	for i := range c1.blocks {
		if len(c1.blocks[i]) != len(c2.blocks[i]) {
			t.Fatalf("batch %d sizes differ", i)
		}
		for j := range c1.blocks[i] {
			if c1.blocks[i][j].Ts != c2.blocks[i][j].Ts {
				t.Fatalf("batch %d tx %d differ", i, j)
			}
		}
	}
}

func TestSubmitAfterStop(t *testing.T) {
	b := New(Options{})
	b.Subscribe(&memCommitter{})
	b.Start()
	b.Stop()
	if err := b.Submit(tx(1)); err != ErrStopped {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	// Stop is idempotent.
	if err := b.Stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
}

func TestStopDrainsQueue(t *testing.T) {
	c := &memCommitter{}
	b := New(Options{BatchSize: 1000, BatchTimeout: time.Hour})
	b.Subscribe(c)
	b.Start()
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Submit(tx(i))
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let them enqueue
	b.Stop()
	wg.Wait()
	// Drained batch commits; all submitters got a response.
	if got := c.total(); got != 5 {
		t.Errorf("drained %d of 5", got)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
		}
	}
}

func TestDoubleStartFails(t *testing.T) {
	b := New(Options{})
	b.Start()
	defer b.Stop()
	if err := b.Start(); err == nil {
		t.Error("double start accepted")
	}
}
