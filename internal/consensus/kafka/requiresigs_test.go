package kafka

import (
	"crypto/ed25519"
	"sync"
	"testing"
	"time"
)

// TestRequireSigsMixedBatch submits a full batch of interleaved signed
// and unsigned transactions: the parallel batch check must reject
// exactly the unsigned ones (each seeing ErrRejected) and deliver the
// signed ones to every subscriber in submission order.
func TestRequireSigsMixedBatch(t *testing.T) {
	key := ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
	c := &memCommitter{}
	b := New(Options{BatchSize: 8, BatchTimeout: time.Hour, RequireSigs: true, Parallelism: 4})
	b.Subscribe(c)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	errs := make([]error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := tx(i)
			if i%2 == 0 {
				tr.Sign(key)
			}
			errs[i] = b.Submit(tr)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if i%2 == 0 && err != nil {
			t.Errorf("signed tx %d: %v", i, err)
		}
		if i%2 == 1 && err != ErrRejected {
			t.Errorf("unsigned tx %d: err = %v, want ErrRejected", i, err)
		}
	}
	if got := c.total(); got != 4 {
		t.Fatalf("committed %d txs, want the 4 signed ones", got)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, blk := range c.blocks {
		for _, tr := range blk {
			if !tr.VerifySig() {
				t.Fatal("unsigned transaction reached a subscriber")
			}
		}
	}
}

// TestRequireSigsAllRejected: a batch that filters down to nothing must
// not deliver an empty block, and the broker must stay live for the
// next batch.
func TestRequireSigsAllRejected(t *testing.T) {
	c := &memCommitter{}
	b := New(Options{BatchSize: 4, BatchTimeout: time.Hour, RequireSigs: true})
	b.Subscribe(c)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Submit(tx(i)); err != ErrRejected {
				t.Errorf("unsigned tx %d: err = %v, want ErrRejected", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.mu.Lock()
	delivered := len(c.blocks)
	c.mu.Unlock()
	if delivered != 0 {
		t.Fatalf("empty batch delivered %d blocks", delivered)
	}

	key := ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := tx(10 + i)
			tr.Sign(key)
			if err := b.Submit(tr); err != nil {
				t.Errorf("signed tx %d after rejected batch: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := c.total(); got != 4 {
		t.Fatalf("follow-up batch committed %d txs, want 4", got)
	}
}
