// Package consensus defines SEBDB's pluggable consensus abstraction
// (paper §III-B: "SEBDB uses plug-in pattern, allowing users to select
// different consensus protocol according to their requirements.
// Currently, we support KAFKA and PBFT"). A consensus component orders
// submitted transactions into batches and delivers each batch exactly
// once, in the same order, to every participating node's committer.
package consensus

import (
	"sebdb/internal/types"
)

// Committer applies one decided batch as the next block. core.Engine
// satisfies this interface.
type Committer interface {
	CommitBlock(txs []*types.Transaction, ts int64) (*types.Block, error)
}

// Consensus is the pluggable ordering component.
type Consensus interface {
	// Submit hands a transaction to the ordering service. It blocks
	// until the transaction has been committed (the client-visible
	// response of the write path) or the service stops.
	Submit(tx *types.Transaction) error
	// Start launches the component's background processing.
	Start() error
	// Stop shuts the component down, draining in-flight batches.
	Stop() error
}
