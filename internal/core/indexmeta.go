package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Index definitions are node-local configuration, not chain state, but
// an operator expects them to survive restarts. The engine records every
// CreateIndex/CreateAuthIndex call in a small JSON file in the data
// directory and replays it on Open (the indexes themselves are derived
// state and are rebuilt from the chain).

const indexMetaFile = "indexes.json"

type indexMeta struct {
	// Layered lists user layered indexes as "table.col" keys.
	Layered []string `json:"layered"`
	// Auth lists ALIs as "table.col" keys ("" table = system column).
	Auth []string `json:"auth"`
}

func (e *Engine) indexMetaPath() string {
	return filepath.Join(e.cfg.Dir, indexMetaFile)
}

// loadIndexMeta replays persisted index definitions after the chain has
// been reindexed on Open.
func (e *Engine) loadIndexMeta() error {
	raw, err := os.ReadFile(e.indexMetaPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: index meta: %w", err)
	}
	var m indexMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("core: index meta: %w", err)
	}
	for _, key := range m.Layered {
		spec := splitKey(key)
		if err := e.CreateIndex(spec.table, spec.col); err != nil {
			return fmt.Errorf("core: replaying layered index %q: %w", key, err)
		}
	}
	for _, key := range m.Auth {
		spec := splitKey(key)
		if err := e.CreateAuthIndex(spec.table, spec.col); err != nil {
			return fmt.Errorf("core: replaying auth index %q: %w", key, err)
		}
	}
	return nil
}

// saveIndexMeta writes the current user index definitions. Callers hold
// no lock; the engine's mu protects the maps read here.
func (e *Engine) saveIndexMeta() error {
	var m indexMeta
	e.mu.RLock()
	for key := range e.lidx {
		if key == ".senid" || key == ".tname" {
			continue // the global system indexes always exist
		}
		m.Layered = append(m.Layered, key)
	}
	for key := range e.alis {
		m.Auth = append(m.Auth, key)
	}
	e.mu.RUnlock()
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := e.indexMetaPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("core: index meta: %w", err)
	}
	return os.Rename(tmp, e.indexMetaPath())
}
