package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sebdb/internal/exec"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// seededChain builds an engine whose donate rows are arranged so that
// within every block the key order of amount is the REVERSE of the
// position order — any access path that emits per-block matches in key
// order instead of chain order gets caught immediately.
func seededChain(t *testing.T, blocks, txPerBlock int) *Engine {
	t.Helper()
	e, err := Open(Config{Dir: t.TempDir(), HistogramDepth: 10, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Error(err)
		}
	})
	if _, err := e.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		var batch []*types.Transaction
		for i := 0; i < txPerBlock; i++ {
			// Amounts descend within the block, so B+-tree key order is
			// the reverse of commit order.
			amount := float64((txPerBlock - i) * 10)
			tx, err := e.NewTransaction(fmt.Sprintf("org%d", i%3), "donate", []types.Value{
				types.Str(fmt.Sprintf("donor%d", i%5)),
				types.Str("education"),
				types.Dec(amount),
			})
			if err != nil {
				t.Fatal(err)
			}
			tx.Ts = int64(b+2) * 1000
			batch = append(batch, tx)
		}
		if _, err := e.CommitBlock(batch, int64(b+2)*1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	return e
}

// encodeAll serializes a result set for byte-exact comparison.
func encodeAll(txs []*types.Transaction) [][]byte {
	out := make([][]byte, len(txs))
	for i, tx := range txs {
		out[i] = tx.EncodeBytes()
	}
	return out
}

// TestSelectCrossMethodEquivalence asserts Select's contract: scan,
// bitmap and layered return byte-identical results in chain order,
// sequentially and under the parallel worker pool.
func TestSelectCrossMethodEquivalence(t *testing.T) {
	e := seededChain(t, 12, 20)
	preds := []sqlparser.Pred{{
		Col: "amount", Op: sqlparser.OpBetween,
		Val: types.Dec(30), Hi: types.Dec(150),
	}}

	e.SetParallelism(1)
	ref, refStats, err := exec.Select(e, "donate", preds, nil, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference scan returned no rows; bad fixture")
	}
	// The reference must itself be in chain order (ascending Tids).
	for i := 1; i < len(ref); i++ {
		if ref[i].Tid <= ref[i-1].Tid {
			t.Fatalf("reference scan out of chain order at %d: tid %d after %d",
				i, ref[i].Tid, ref[i-1].Tid)
		}
	}
	refBytes := encodeAll(ref)

	for _, workers := range []int{1, 8} {
		e.SetParallelism(workers)
		for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
			txs, st, err := exec.Select(e, "donate", preds, nil, m)
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, m, err)
			}
			got := encodeAll(txs)
			if len(got) != len(refBytes) {
				t.Fatalf("workers=%d %v: %d rows, want %d", workers, m, len(got), len(refBytes))
			}
			for i := range got {
				if !bytes.Equal(got[i], refBytes[i]) {
					t.Fatalf("workers=%d %v: row %d differs from scan reference (tid %d vs %d)",
						workers, m, i, txs[i].Tid, ref[i].Tid)
				}
			}
			if m == exec.MethodScan && st != refStats {
				t.Fatalf("workers=%d scan stats %+v differ from sequential %+v", workers, st, refStats)
			}
		}
	}
}

// TestParallelReplayEquivalence checks that the decode-ahead replay on
// Open rebuilds the same engine state as a sequential replay.
func TestParallelReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, HistogramDepth: 10, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		var batch []*types.Transaction
		for i := 0; i < 15; i++ {
			tx, err := e.NewTransaction("org1", "donate", []types.Value{
				types.Str("d"), types.Str("p"), types.Dec(float64(b*100 + i)),
			})
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, tx)
		}
		if _, err := e.CommitBlock(batch, int64(b+2)*1000); err != nil {
			t.Fatal(err)
		}
	}
	wantHeight := e.Height()
	wantTxs, _, err := exec.Select(e, "donate", nil, nil, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir, HistogramDepth: 10, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := re.Close(); err != nil {
			t.Error(err)
		}
	}()
	if re.Height() != wantHeight {
		t.Fatalf("replayed height %d, want %d", re.Height(), wantHeight)
	}
	got, _, err := exec.Select(re, "donate", nil, nil, exec.MethodScan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantTxs) {
		t.Fatalf("replayed %d rows, want %d", len(got), len(wantTxs))
	}
	for i := range got {
		if !bytes.Equal(got[i].EncodeBytes(), wantTxs[i].EncodeBytes()) {
			t.Fatalf("replayed row %d differs", i)
		}
	}
	// Tid assignment must continue from the replayed counter.
	tx, err := re.NewTransaction("org1", "donate", []types.Value{
		types.Str("d"), types.Str("p"), types.Dec(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := re.CommitBlock([]*types.Transaction{tx}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantTxs[len(wantTxs)-1].Tid + 1; b.Txs[0].Tid != want {
		t.Fatalf("post-replay tid %d, want %d", b.Txs[0].Tid, want)
	}
}

// TestCreateIndexCommitBlockRace hammers CreateIndex concurrently with
// CommitBlock and asserts the finished index covers every committed
// block. Before the gap-catchup fix, blocks committed between the end
// of the backfill and the index registration were silently dropped
// from layered queries forever.
func TestCreateIndexCommitBlockRace(t *testing.T) {
	const attempts = 8
	for a := 0; a < attempts; a++ {
		e, err := Open(Config{Dir: t.TempDir(), HistogramDepth: 10})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
			t.Fatal(err)
		}
		if err := e.FlushAt(1); err != nil {
			t.Fatal(err)
		}
		commit := func(n int) {
			for i := 0; i < n; i++ {
				tx, err := e.NewTransaction("org1", "donate", []types.Value{
					types.Str("donorX"), types.Str("p"), types.Dec(float64(i)),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.CommitBlock([]*types.Transaction{tx}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}
		commit(10) // some chain to backfill

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					commit(1)
				}
			}
		}()
		if err := e.CreateIndex("donate", "donor"); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()

		// Every committed donate row carries donor "donorX"; the layered
		// path must see them all.
		preds := []sqlparser.Pred{{Col: "donor", Op: sqlparser.OpEq, Val: types.Str("donorX")}}
		want, _, err := exec.Select(e, "donate", preds, nil, exec.MethodScan)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := exec.Select(e, "donate", preds, nil, exec.MethodLayered)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("attempt %d: layered index dropped rows: got %d, scan found %d",
				a, len(got), len(want))
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGetBlockRejectsNegative checks GET BLOCK ID/TID=-1 errors instead
// of wrapping to a huge unsigned id.
func TestGetBlockRejectsNegative(t *testing.T) {
	e := seededChain(t, 3, 5)
	for _, q := range []string{`GET BLOCK ID=-1`, `GET BLOCK TID=-1`} {
		if _, err := e.Execute(q); err == nil {
			t.Fatalf("%s: expected error, got none", q)
		}
	}
	if _, err := e.Execute(`GET BLOCK ID=0`); err != nil {
		t.Fatalf("GET BLOCK ID=0: %v", err)
	}
}
