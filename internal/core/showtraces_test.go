package core

import (
	"strings"
	"testing"

	"sebdb/internal/obs"
)

// TestShowTraces drives the recorder through real statements and reads
// it back over SQL: every sampled statement appears newest-first with a
// trace ID on its root row and indented span rows below.
func TestShowTraces(t *testing.T) {
	clk := tickClock()
	reg := obs.NewRegistry(clk)
	rec := obs.NewRecorder(obs.RecorderConfig{Registry: reg, SlowMicros: 1})
	e := testEngine(t, Config{Clock: clk, Obs: reg, Recorder: rec})
	seedDonation(t, e, 10, 5)
	mustExec(t, e, `SELECT * FROM donate WHERE amount >= 0`)

	res := mustExec(t, e, `SHOW TRACES`)
	wantCols := []string{"trace_id", "stage", "micros",
		"blocks_read", "txs_examined", "index_probes", "detail"}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("SHOW TRACES returned no rows")
	}
	// Newest first: the root row of the SELECT leads, with its ID and SQL.
	root := res.Rows[0]
	if root[0].S == "" {
		t.Errorf("root row missing trace id: %v", root)
	}
	if root[1].S != "stmt.select" {
		t.Errorf("root stage = %q, want stmt.select", root[1].S)
	}
	if !strings.Contains(root[6].S, `sql="SELECT`) {
		t.Errorf("root detail = %q, want the statement's SQL", root[6].S)
	}
	// Child rows are indented, carry no ID, and include the parse stage.
	var sawParse bool
	for _, row := range res.Rows[1:] {
		if row[0].S != "" {
			break // next statement's root
		}
		if !strings.HasPrefix(row[1].S, "  ") {
			t.Errorf("child stage %q not indented", row[1].S)
		}
		if strings.TrimSpace(row[1].S) == "parse" {
			sawParse = true
		}
	}
	if !sawParse {
		t.Errorf("no parse span under the root: %v", res.Rows)
	}

	// SHOW SLOW TRACES honours LIMIT; with SlowMicros=1 and a ticking
	// clock every statement qualifies, so one row group comes back.
	slow := mustExec(t, e, `SHOW SLOW TRACES LIMIT 1`)
	var roots int
	for _, row := range slow.Rows {
		if row[0].S != "" {
			roots++
			if !strings.Contains(row[6].S, "slow=true") {
				t.Errorf("slow root not marked slow: %q", row[6].S)
			}
		}
	}
	if roots != 1 {
		t.Errorf("SHOW SLOW TRACES LIMIT 1 returned %d statements, want 1", roots)
	}
}

// TestShowTracesWithoutRecorder pins the disabled path: valid SQL, an
// empty result, no crash.
func TestShowTracesWithoutRecorder(t *testing.T) {
	e := testEngine(t, Config{})
	for _, q := range []string{`SHOW TRACES`, `SHOW SLOW TRACES`, `SHOW TRACES LIMIT 5`} {
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%s returned %d rows without a recorder", q, len(res.Rows))
		}
	}
}

// TestShowTracesAccess checks SHOW TRACES is node-local introspection:
// it works for any sender, even ones access control would stop from
// reading tables.
func TestShowTracesAccess(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{})
	e := testEngine(t, Config{Recorder: rec})
	seedDonation(t, e, 5, 5)
	if _, err := e.ExecuteAs("nobody", `SHOW TRACES`); err != nil {
		t.Fatalf("SHOW TRACES as unprivileged sender: %v", err)
	}
}
