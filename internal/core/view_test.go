package core

import (
	"sync"
	"testing"

	"sebdb/internal/auth"
	"sebdb/internal/clock"
	"sebdb/internal/exec"
	"sebdb/internal/faultfs"
	"sebdb/internal/types"
)

// TestViewPinnedBeforeCommitServesOldHeight is the tentpole's regression
// anchor: a view pinned before a run of commits keeps answering at its
// own height — same block count, same rows — while the engine's current
// view moves on.
func TestViewPinnedBeforeCommitServesOldHeight(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 4, Clock: clock.Fixed(1)})
	seedDonation(t, e, 20, 4)

	v := e.CurrentView()
	h0, epoch0 := v.Height(), v.Epoch()
	if h0 != e.Height() {
		t.Fatalf("pinned view height %d, engine height %d", h0, e.Height())
	}
	txs, _, err := exec.Select(v, "donate", nil, nil, exec.MethodBitmap)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 20 {
		t.Fatalf("pinned view served %d rows, want 20", len(txs))
	}

	for i := 20; i < 40; i += 4 {
		batch := make([]*types.Transaction, 4)
		for j := range batch {
			batch[j] = donateTx(t, e, i+j)
		}
		if _, err := e.CommitBlock(batch, int64(i+4)*1000); err != nil {
			t.Fatal(err)
		}
	}

	cur := e.CurrentView()
	if cur.Height() != h0+5 {
		t.Errorf("current view height %d, want %d", cur.Height(), h0+5)
	}
	if cur.Epoch() <= epoch0 {
		t.Errorf("epoch did not advance: pinned %d, current %d", epoch0, cur.Epoch())
	}
	// The old view is frozen: height, block bound and served rows.
	if v.Height() != h0 || v.NumBlocks() != int(h0) {
		t.Errorf("pinned view moved: height %d, blocks %d, want %d", v.Height(), v.NumBlocks(), h0)
	}
	if _, err := v.Block(h0); err == nil {
		t.Error("pinned view served a block beyond its height")
	}
	txs, _, err = exec.Select(v, "donate", nil, nil, exec.MethodBitmap)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 20 {
		t.Errorf("pinned view served %d rows after commits, want 20", len(txs))
	}
	txs, _, err = exec.Select(cur, "donate", nil, nil, exec.MethodBitmap)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 40 {
		t.Errorf("current view served %d rows, want 40", len(txs))
	}
}

// TestViewPinsIndexMembership pins the membership rule: an index created
// after a view was published is not visible through it, while the next
// published view carries it.
func TestViewPinsIndexMembership(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 4, Clock: clock.Fixed(1)})
	seedDonation(t, e, 8, 4)

	before := e.CurrentView()
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if before.Layered("donate", "amount") != nil || before.AuthIndex("donate", "amount") != nil {
		t.Error("index created after the pin is visible through the old view")
	}
	after := e.CurrentView()
	if after.Layered("donate", "amount") == nil || after.AuthIndex("donate", "amount") == nil {
		t.Error("index creation did not republish the view")
	}
}

// rehearseMutationWindow opens a throwaway engine, runs setup, counts
// the injector ops consumed, then runs act and returns the half-open
// mutation window [m0, m1) that act's filesystem writes occupy. Crash
// runs replay the same sequence against a fresh directory, so pinning
// OpsBeforeCrash inside the window lands the crash inside act.
func rehearseMutationWindow(t *testing.T, setup, act func(e *Engine)) (m0, m1 int) {
	t.Helper()
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	e := testEngine(t, Config{BlockMaxTxs: 1, FS: inj, Clock: clock.Fixed(1)})
	setup(e)
	m0 = inj.Mutations()
	act(e)
	m1 = inj.Mutations()
	if m1 <= m0 {
		t.Fatalf("rehearsal: act performed no mutations (window [%d, %d))", m0, m1)
	}
	return m0, m1
}

// TestCreateRollsBackWhenAppendFails forces the block append under
// execCreate's submit to fail at every possible write and checks the
// local registration is rolled back each time: the catalog would
// otherwise claim a table the chain never defines.
func TestCreateRollsBackWhenAppendFails(t *testing.T) {
	const ddl = `CREATE donate (donor string, project string, amount decimal)`
	m0, m1 := rehearseMutationWindow(t,
		func(e *Engine) {},
		func(e *Engine) { mustExec(t, e, ddl) })

	for k := m0; k < m1; k++ {
		inj := faultfs.New(faultfs.Options{OpsBeforeCrash: k})
		e := testEngine(t, Config{BlockMaxTxs: 1, FS: inj, Clock: clock.Fixed(1)})
		if _, err := e.Execute(ddl); err == nil {
			t.Fatalf("k=%d: CREATE succeeded through a crashed append", k)
		}
		if e.catalog.Has("donate") {
			t.Errorf("k=%d: catalog still defines the table after the failed submit", k)
		}
		if e.CurrentView().HasTable("donate") {
			t.Errorf("k=%d: published view still serves the table after the rollback", k)
		}
	}
}

// TestDeployContractRollsBackWhenAppendFails is the contract analog:
// a deployment whose transaction never reaches the chain must leave the
// registry (and the published view) without the contract.
func TestDeployContractRollsBackWhenAppendFails(t *testing.T) {
	statements := []string{`INSERT INTO donate ($sender, $1, $2)`}
	setup := func(e *Engine) {
		mustExec(t, e, `CREATE donate (donor string, project string, amount decimal)`)
	}
	m0, m1 := rehearseMutationWindow(t, setup,
		func(e *Engine) {
			if err := e.DeployContract("charity", "give", statements); err != nil {
				t.Fatal(err)
			}
		})

	for k := m0; k < m1; k++ {
		inj := faultfs.New(faultfs.Options{OpsBeforeCrash: k})
		e := testEngine(t, Config{BlockMaxTxs: 1, FS: inj, Clock: clock.Fixed(1)})
		setup(e)
		if err := e.DeployContract("charity", "give", statements); err == nil {
			t.Fatalf("k=%d: deployment succeeded through a crashed append", k)
		}
		if _, err := e.contracts.Get("give"); err == nil {
			t.Errorf("k=%d: registry still holds the contract after the failed submit", k)
		}
		if _, err := e.CurrentView().Contract("give"); err == nil {
			t.Errorf("k=%d: published view still serves the contract after the rollback", k)
		}
	}
}

// TestCreateKeptWhenOnlyFsyncFails pins the other half of the rollback
// condition: when the block committed and only the group fsync failed,
// the transaction is on the chain, so the local registration must stay
// — rolling it back would diverge from what every peer replays.
func TestCreateKeptWhenOnlyFsyncFails(t *testing.T) {
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1, SyncErrors: true})
	e := testEngine(t, Config{BlockMaxTxs: 1, Sync: true, FS: inj, Clock: clock.Fixed(1)})

	if _, err := e.Execute(`CREATE donate (donor string, project string, amount decimal)`); err == nil {
		t.Fatal("CREATE reported success despite the failed fsync")
	}
	if !e.catalog.Has("donate") {
		t.Error("committed table was rolled back on a sync-only failure")
	}
	if !e.CurrentView().HasTable("donate") {
		t.Error("published view lost the committed table")
	}
	if e.Height() != 1 {
		t.Errorf("height = %d, want 1 (the DDL block committed)", e.Height())
	}

	if err := e.DeployContract("charity", "give", []string{`INSERT INTO donate ($sender, $1, $2)`}); err == nil {
		t.Fatal("deployment reported success despite the failed fsync")
	}
	if _, err := e.contracts.Get("give"); err != nil {
		t.Error("committed contract was rolled back on a sync-only failure")
	}
	if _, err := e.CurrentView().Contract("give"); err != nil {
		t.Error("published view lost the committed contract")
	}
}

// TestViewReadStressSingleHeight hammers the read paths — SELECT,
// TRACE, EXPLAIN and thin-client VO generation — against an engine
// that is simultaneously committing blocks and building checkpoints.
// Every reader pins views and demands answers exactly consistent with
// one published height; run with -race this is the tentpole's
// lock-discipline and torn-read regression test.
func TestViewReadStressSingleHeight(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 4, Parallelism: 4, CheckpointInterval: 5, Clock: clock.Fixed(1)})
	seedDonation(t, e, 20, 4)
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	base := e.Height()
	// Row count as a function of height: blocks past the seed hold 4
	// donate rows each.
	rowsAt := func(h uint64) int {
		if h < base {
			t.Fatalf("observed height %d below the seeded base %d", h, base)
		}
		return 20 + 4*int(h-base)
	}
	// org1 donations among the first n rows (donateTx assigns org i%3).
	traceAt := func(n int) int { return (n + 1) / 3 }
	// The set of legal whole-statement answers: any published height.
	validRows := make(map[int]bool)
	validTrace := make(map[int]bool)
	for h := base; h <= base+rounds; h++ {
		validRows[rowsAt(h)] = true
		validTrace[traceAt(rowsAt(h))] = true
	}

	done := make(chan struct{})
	var writers, readers sync.WaitGroup

	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < rounds; i++ {
			batch := make([]*types.Transaction, 4)
			for j := range batch {
				batch[j] = donateTx(t, e, 20+i*4+j)
			}
			if _, err := e.CommitBlock(batch, int64(21+i)*1000); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastHeight uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				// A pinned view answers exactly at its own height, and
				// published heights are monotone per reader.
				v := e.CurrentView()
				if v.Height() < lastHeight {
					t.Errorf("view height went backwards: %d after %d", v.Height(), lastHeight)
					return
				}
				lastHeight = v.Height()
				txs, _, err := exec.Select(v, "donate", nil, nil, exec.MethodBitmap)
				if err != nil {
					t.Error(err)
					return
				}
				if want := rowsAt(v.Height()); len(txs) != want {
					t.Errorf("view at height %d served %d rows, want %d", v.Height(), len(txs), want)
					return
				}
				// Whole statements pin their own views; their answers must
				// match some published height.
				res, err := e.Execute(`SELECT * FROM donate WHERE amount >= 0`)
				if err != nil {
					t.Error(err)
					return
				}
				if !validRows[len(res.Rows)] {
					t.Errorf("SELECT answered %d rows — no published height serves that", len(res.Rows))
					return
				}
				res, err = e.Execute(`TRACE OPERATOR = "org1"`)
				if err != nil {
					t.Error(err)
					return
				}
				if !validTrace[len(res.Rows)] {
					t.Errorf("TRACE answered %d rows — no published height serves that", len(res.Rows))
					return
				}
				if _, err := e.Execute(`EXPLAIN SELECT * FROM donate WHERE amount BETWEEN 3 AND 40`); err != nil {
					t.Error(err)
					return
				}
				// Thin-client VO generation from a pinned view: the answer
				// verifies and covers exactly the pinned height's rows.
				v = e.CurrentView()
				ali := v.AuthIndex("donate", "amount")
				if ali == nil {
					t.Error("view lost the ALI")
					return
				}
				lo, hi := types.Dec(0), types.Dec(1_000_000)
				ans := auth.Serve(ali, v.Height(), nil, lo, hi)
				digest, txs2, err := auth.VerifyAnswer(ans, lo, hi)
				if err != nil {
					t.Errorf("VO verification failed: %v", err)
					return
				}
				if want := rowsAt(v.Height()); len(txs2) != want {
					t.Errorf("VO at height %d carried %d rows, want %d", v.Height(), len(txs2), want)
					return
				}
				if digest != auth.Digest(ali, v.Height(), nil, lo, hi) {
					t.Error("VO digest diverges from the auxiliary digest at the same height")
					return
				}
			}
		}()
	}

	writers.Wait()
	close(done)
	readers.Wait()

	if got := e.CurrentView().Height(); got != base+rounds {
		t.Errorf("final view height %d, want %d", got, base+rounds)
	}
}
