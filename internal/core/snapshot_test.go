package core

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sebdb/internal/auth"
	"sebdb/internal/clock"
	"sebdb/internal/faultfs"
	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// recoveryFingerprint captures one deterministic view over every index
// family: block-level (GET BLOCK), transaction-level (table bitmaps via
// equality predicates and TRACE), in-block (layered range scans), and
// the ALIs via the full Serve/VerifyAnswer protocol. Two engines over
// the same chain must produce byte-identical fingerprints.
func recoveryFingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	var sb strings.Builder
	for _, q := range []string{
		`GET BLOCK ID = 1`,
		`TRACE OPERATOR = "org1"`,
		`SELECT * FROM donate WHERE amount >= 3 AND amount <= 14`,
		`SELECT donor, amount FROM donate WHERE donor = "donor003"`,
		`SELECT * FROM donate WHERE project = "education" AND amount = 7`,
	} {
		res, err := e.Execute(q)
		if err != nil {
			t.Fatalf("Execute(%q): %v", q, err)
		}
		fmt.Fprintf(&sb, "%s | %v | %v\n", q, res.Columns, res.Rows)
	}
	h := e.Height()
	// Continuous ALI: compare the verified transactions (the histogram
	// first level is sampled at creation time, so candidate sets — and
	// hence digests — legitimately differ between a checkpoint restore
	// and a from-scratch rebuild; the verified answer may not).
	if ali := e.AuthIndex("donate", "amount"); ali != nil {
		ans := auth.Serve(ali, h, nil, types.Dec(3), types.Dec(14))
		_, txs, err := auth.VerifyAnswer(ans, types.Dec(3), types.Dec(14))
		if err != nil {
			t.Fatalf("VerifyAnswer(amount): %v", err)
		}
		fmt.Fprintf(&sb, "ali amount |")
		for _, tx := range txs {
			fmt.Fprintf(&sb, " %d", tx.Tid)
		}
		fmt.Fprintln(&sb)
	}
	// Discrete ALI: the first level is exact value bitmaps, so the full
	// digest must round-trip too.
	if ali := e.AuthIndex("donate", "donor"); ali != nil {
		lo, hi := types.Str("donor003"), types.Str("donor003")
		ans := auth.Serve(ali, h, nil, lo, hi)
		digest, txs, err := auth.VerifyAnswer(ans, lo, hi)
		if err != nil {
			t.Fatalf("VerifyAnswer(donor): %v", err)
		}
		fmt.Fprintf(&sb, "ali donor | %x |", digest)
		for _, tx := range txs {
			fmt.Fprintf(&sb, " %d", tx.Tid)
		}
		fmt.Fprintln(&sb)
	}
	fmt.Fprintf(&sb, "height=%d\n", h)
	return sb.String()
}

// seedSnapshotChain builds a chain with both user index kinds and a
// checkpoint that covers them, plus a two-block uncheckpointed suffix.
func seedSnapshotChain(t *testing.T, dir string) {
	t.Helper()
	e, err := Open(Config{Dir: dir, BlockMaxTxs: 4, CheckpointInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	seedDonation(t, e, 60, 4)
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("donate", "donor"); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// A suffix past the checkpoint so reopen really replays something.
	for i := 0; i < 8; i++ {
		tx, err := e.NewTransaction(fmt.Sprintf("org%d", i%3), "donate", []types.Value{
			types.Str(fmt.Sprintf("donor%03d", i%10)),
			types.Str("health"),
			types.Dec(float64(100 + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRestartEquivalence is the crash-free round trip: every
// index family and the ALIs must answer identically on the original
// engine, after a checkpoint-seeded restart, and after a full-replay
// restart.
func TestCheckpointRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	seedSnapshotChain(t, dir)

	reg := obs.NewRegistry(clock.UnixMicro)
	fast, err := Open(Config{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	fpFast := recoveryFingerprint(t, fast)
	total := fast.Height()
	suffix := reg.Counter("sebdb_snapshot_suffix_blocks").Value()
	if suffix == 0 || suffix >= total {
		t.Fatalf("checkpoint reopen replayed %d of %d blocks", suffix, total)
	}

	reg2 := obs.NewRegistry(clock.UnixMicro)
	full, err := Open(Config{Dir: dir, Obs: reg2, DisableCheckpointLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	fpFull := recoveryFingerprint(t, full)
	if got := reg2.Counter("sebdb_snapshot_suffix_blocks").Value(); got != total {
		t.Fatalf("full reopen replayed %d of %d blocks", got, total)
	}

	if fpFast != fpFull {
		t.Errorf("checkpoint restart diverges from full replay:\n--- checkpoint ---\n%s--- full ---\n%s", fpFast, fpFull)
	}
}

// TestAutoCheckpointInterval checks CommitBlock writes a checkpoint at
// every interval boundary and keeps it loadable.
func TestAutoCheckpointInterval(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, BlockMaxTxs: 2, CheckpointInterval: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedDonation(t, e, 12, 2) // 1 schema block + 6 data blocks = height 7
	if err := e.CheckpointErr(); err != nil {
		t.Fatalf("automatic checkpoint failed: %v", err)
	}
	ck, err := e.SnapshotDir().Load()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint written")
	}
	if ck.Height != 6 {
		t.Fatalf("checkpoint height = %d, want 6 (last interval boundary under %d)", ck.Height, e.Height())
	}
	if ck.Anchor != e.Headers()[5].Hash() {
		t.Fatal("checkpoint anchor does not match block 5")
	}
}

// TestExplainRecoveryStages asserts the Open trace exposes the
// checkpoint and replay stages (satellite: recovery visibility on
// sebdb_stage_micros / EXPLAIN-style rendering).
func TestExplainRecoveryStages(t *testing.T) {
	dir := t.TempDir()
	seedSnapshotChain(t, dir)
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := e.ExplainRecovery()
	var stages []string
	for _, row := range res.Rows {
		stages = append(stages, strings.TrimSpace(row[0].String()))
	}
	joined := strings.Join(stages, ",")
	for _, want := range []string{"recovery", "recovery.checkpoint", "recovery.replay"} {
		found := false
		for _, s := range stages {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %q missing from recovery trace (got %s)", want, joined)
		}
	}
	if tr := e.RecoveryTrace(); tr == nil || tr.Name() != "recovery" {
		t.Fatal("RecoveryTrace not retained")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineCheckpointCrashMatrix crashes the filesystem at every
// mutating operation of an open-checkpoint-close cycle, then reboots
// cleanly both with and without checkpoint loading. Whatever the crash
// left behind, the two recovery paths must agree exactly — "never wrong
// answers, only slower ones".
func TestEngineCheckpointCrashMatrix(t *testing.T) {
	seed := t.TempDir()
	seedSnapshotChain(t, seed)

	// Rehearsal: count the mutating ops of the cycle under test.
	rehearsal := t.TempDir()
	copyTree(t, seed, rehearsal)
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	re, err := Open(Config{Dir: rehearsal, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	total := inj.Mutations()
	if total < 8 {
		t.Fatalf("rehearsal saw only %d mutating ops", total)
	}

	var want string
	for k := 0; k < total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, seed, dir)
			inj := faultfs.New(faultfs.Options{OpsBeforeCrash: k})
			e, err := Open(Config{Dir: dir, FS: inj})
			if err == nil {
				// The open survived; crash during the checkpoint instead.
				//sebdb:ignore-err crash-injected write may fail by design
				e.WriteCheckpoint()
				//sebdb:ignore-err crashed engine teardown
				e.Close()
			}
			if !inj.Crashed() {
				t.Fatalf("crash point %d never reached", k)
			}

			fast, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatalf("reboot (checkpoint path): %v", err)
			}
			defer fast.Close()
			full, err := Open(Config{Dir: dir, DisableCheckpointLoad: true})
			if err != nil {
				t.Fatalf("reboot (full replay): %v", err)
			}
			defer full.Close()

			if fast.Height() != full.Height() {
				t.Fatalf("heights diverge: checkpoint %d vs full %d", fast.Height(), full.Height())
			}
			fpFast := recoveryFingerprint(t, fast)
			fpFull := recoveryFingerprint(t, full)
			if fpFast != fpFull {
				t.Fatalf("crash at op %d: recovery paths diverge:\n--- checkpoint ---\n%s--- full ---\n%s", k, fpFast, fpFull)
			}
			// No writes happened in this phase's chain, so the chain must
			// have survived untouched regardless of the crash point.
			if want == "" {
				want = fpFull
			} else if fpFull != want {
				t.Fatalf("crash at op %d altered the chain:\n%s\nvs\n%s", k, fpFull, want)
			}
		})
	}
}

// TestOpenWithShortReads drives recovery through a filesystem that
// never returns more than a few bytes per Read call; every load path
// must tolerate partial reads.
func TestOpenWithShortReads(t *testing.T) {
	dir := t.TempDir()
	seedSnapshotChain(t, dir)
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1, ShortReads: 7})
	e, err := Open(Config{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	clean, err := Open(Config{Dir: dir, DisableCheckpointLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if got, want := recoveryFingerprint(t, e), recoveryFingerprint(t, clean); got != want {
		t.Fatalf("short reads corrupted recovery:\n%s\nvs\n%s", got, want)
	}
}

// TestOpenSuffixCounterTallChain is the headline acceptance test: on a
// 10k-block chain with periodic checkpoints, Open replays only the
// post-checkpoint suffix, observable on sebdb_snapshot_suffix_blocks.
func TestOpenSuffixCounterTallChain(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-block chain")
	}
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, BlockMaxTxs: 1, CheckpointInterval: 3000})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE donate (donor string, project string, amount decimal)`)
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	for e.Height() < 10_000 {
		i := int(e.Height())
		tx, err := e.NewTransaction(fmt.Sprintf("org%d", i%3), "donate", []types.Value{
			types.Str(fmt.Sprintf("donor%03d", i%997)),
			types.Str("education"),
			types.Dec(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.CommitBlock([]*types.Transaction{tx}, int64(i+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CheckpointErr(); err != nil {
		t.Fatalf("automatic checkpoint failed: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry(clock.UnixMicro)
	e2, err := Open(Config{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Height() != 10_000 {
		t.Fatalf("height = %d", e2.Height())
	}
	// Checkpoints were written at heights 3000, 6000 and 9000, so the
	// reopen must replay exactly the last 1000 blocks.
	if got := reg.Counter("sebdb_snapshot_suffix_blocks").Value(); got != 1000 {
		t.Fatalf("suffix blocks = %d, want 1000", got)
	}
	res := mustExec(t, e2, `SELECT * FROM donate WHERE amount = 9500`)
	if len(res.Rows) != 1 {
		t.Fatalf("post-recovery query returned %d rows", len(res.Rows))
	}
}
