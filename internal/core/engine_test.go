package core

import (
	"crypto/ed25519"
	"fmt"
	"testing"

	"sebdb/internal/rdbms"
	"sebdb/internal/types"
)

func testEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// seedDonation creates the donation schema and loads n donate rows,
// flushing every blockTxs transactions.
func seedDonation(t testing.TB, e *Engine, n, blockTxs int) {
	t.Helper()
	mustExec(t, e, `CREATE donate (donor string, project string, amount decimal)`)
	mustExec(t, e, `CREATE transfer (project string, donor string, organization string, amount decimal)`)
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	var batch []*types.Transaction
	for i := 0; i < n; i++ {
		tx, err := e.NewTransaction(fmt.Sprintf("org%d", i%3), "donate", []types.Value{
			types.Str(fmt.Sprintf("donor%03d", i%10)),
			types.Str("education"),
			types.Dec(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		tx.Ts = int64(i+1) * 1000 // synthetic time axis for window tests
		batch = append(batch, tx)
		if len(batch) == blockTxs {
			if _, err := e.CommitBlock(batch, int64(i+1)*1000); err != nil {
				t.Fatal(err)
			}
			batch = nil
		}
	}
	if len(batch) > 0 {
		if _, err := e.CommitBlock(batch, int64(n+1)*1000); err != nil {
			t.Fatal(err)
		}
	}
}

func mustExec(t testing.TB, e *Engine, sql string, params ...types.Value) *Result {
	t.Helper()
	res, err := e.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelectRoundTrip(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 5})
	mustExec(t, e, `CREATE Donate ( donor string, project string, amount decimal)`)
	mustExec(t, e, `INSERT into Donate ("Jack", "Education", 100)`)
	mustExec(t, e, `INSERT INTO donate VALUES(?,?,?)`,
		types.Str("Mary"), types.Str("Health"), types.Dec(50))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT * FROM donate WHERE donor = "Jack"`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// SELECT * exposes system columns first.
	if res.Columns[0] != "tid" || res.Columns[4] != "donor" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Projection.
	res = mustExec(t, e, `SELECT amount, donor FROM donate WHERE project = "Health"`)
	if len(res.Rows) != 1 || res.Rows[0][0] != types.Dec(50) || res.Rows[0][1] != types.Str("Mary") {
		t.Errorf("projected row = %v", res.Rows)
	}
	// The schema tx and the inserts share the chain.
	if e.Height() == 0 {
		t.Error("no blocks were packaged")
	}
}

func TestExecuteErrors(t *testing.T) {
	e := testEngine(t, Config{})
	cases := []string{
		`SELECT * FROM ghost`,
		`INSERT INTO ghost (1)`,
		`CREATE t (a blob)`,
		`GARBAGE`,
	}
	for _, sql := range cases {
		if _, err := e.Execute(sql); err == nil {
			t.Errorf("Execute(%q) should fail", sql)
		}
	}
	// Placeholder arity.
	mustExec(t, e, `CREATE t (a int)`)
	if _, err := e.Execute(`INSERT INTO t VALUES(?)`); err == nil {
		t.Error("missing params accepted")
	}
	if _, err := e.Execute(`INSERT INTO t VALUES(1)`, types.Int(2)); err == nil {
		t.Error("extra params accepted")
	}
	// Wrong arity vs schema.
	if _, err := e.Execute(`INSERT INTO t VALUES(1, 2)`); err == nil {
		t.Error("schema arity mismatch accepted")
	}
	// Conflicting CREATE.
	if _, err := e.Execute(`CREATE t (b string)`); err == nil {
		t.Error("conflicting redefinition accepted")
	}
}

func TestAutoPackaging(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 10})
	mustExec(t, e, `CREATE t (a int)`)
	e.Flush()
	h0 := e.Height()
	for i := 0; i < 25; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO t (%d)`, i))
	}
	if got := e.Height() - h0; got != 2 {
		t.Errorf("auto-packaged %d blocks, want 2 (mempool holds the remainder)", got)
	}
	e.Flush()
	if got := e.Height() - h0; got != 3 {
		t.Errorf("after flush %d blocks, want 3", got)
	}
	res := mustExec(t, e, `SELECT * FROM t`)
	if len(res.Rows) != 25 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestTidAssignmentMonotonic(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 4})
	mustExec(t, e, `CREATE t (a int)`)
	for i := 0; i < 12; i++ {
		mustExec(t, e, fmt.Sprintf(`INSERT INTO t (%d)`, i))
	}
	e.Flush()
	res := mustExec(t, e, `SELECT tid FROM t`)
	seen := map[int64]bool{}
	for _, r := range res.Rows {
		tid := r[0].I
		if seen[tid] {
			t.Fatalf("duplicate tid %d", tid)
		}
		seen[tid] = true
	}
	if len(seen) != 12 {
		t.Errorf("distinct tids = %d", len(seen))
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, Config{Dir: dir, BlockMaxTxs: 5})
	seedDonation(t, e, 20, 5)
	wantHeight := e.Height()
	e.Close()

	e2 := testEngine(t, Config{Dir: dir, BlockMaxTxs: 5})
	if e2.Height() != wantHeight {
		t.Fatalf("recovered height %d, want %d", e2.Height(), wantHeight)
	}
	// Catalog was replayed from schema transactions.
	res := mustExec(t, e2, `SELECT * FROM donate WHERE amount BETWEEN 5 AND 7`)
	if len(res.Rows) != 3 {
		t.Errorf("recovered query rows = %d", len(res.Rows))
	}
	// And the chain keeps growing.
	mustExec(t, e2, `INSERT INTO donate ("X", "Y", 1)`)
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tids continue past the recovered maximum.
	res = mustExec(t, e2, `SELECT tid FROM donate WHERE donor = "X"`)
	if len(res.Rows) != 1 {
		t.Fatalf("new row missing")
	}
}

func TestTraceQueries(t *testing.T) {
	e := testEngine(t, Config{})
	seedDonation(t, e, 30, 10)
	// One dimension: operator.
	res := mustExec(t, e, `TRACE OPERATOR = "org1"`)
	if len(res.Rows) != 10 {
		t.Errorf("TRACE operator rows = %d", len(res.Rows))
	}
	// One dimension: operation (includes the schema txs under _schema).
	res = mustExec(t, e, `TRACE OPERATION = "donate"`)
	if len(res.Rows) != 30 {
		t.Errorf("TRACE operation rows = %d", len(res.Rows))
	}
	// Two dimensions.
	res = mustExec(t, e, `TRACE OPERATOR = "org2", OPERATION = "donate"`)
	if len(res.Rows) != 10 {
		t.Errorf("TRACE 2-dim rows = %d", len(res.Rows))
	}
	// With a window covering only the first data block (ts 1000..10000).
	res = mustExec(t, e, `TRACE [0, 10000] OPERATOR = "org0"`)
	if len(res.Rows) >= 10 || len(res.Rows) == 0 {
		t.Errorf("windowed TRACE rows = %d", len(res.Rows))
	}
}

func TestGetBlock(t *testing.T) {
	e := testEngine(t, Config{})
	seedDonation(t, e, 20, 5)
	res := mustExec(t, e, `GET BLOCK ID=1`)
	if res.Rows[0][0] != types.Int(1) {
		t.Errorf("height = %v", res.Rows[0][0])
	}
	// Lookup by transaction id.
	res = mustExec(t, e, `GET BLOCK TID=7`)
	h := res.Rows[0][0].I
	blk, err := e.Block(uint64(h))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tx := range blk.Txs {
		if tx.Tid == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("block %d does not contain tid 7", h)
	}
	// Lookup by time.
	res = mustExec(t, e, `GET BLOCK TS=5500`)
	if res.Rows[0][0].I < 0 {
		t.Error("ts lookup failed")
	}
	if _, err := e.Execute(`GET BLOCK ID=9999`); err == nil {
		t.Error("missing block accepted")
	}
}

func TestCreateIndexAndLayeredSelect(t *testing.T) {
	e := testEngine(t, Config{HistogramDepth: 10})
	seedDonation(t, e, 100, 10)
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if e.Layered("donate", "amount") == nil {
		t.Fatal("index not registered")
	}
	res := mustExec(t, e, `SELECT * FROM donate WHERE amount BETWEEN 40 AND 49`)
	if len(res.Rows) != 10 {
		t.Errorf("indexed range rows = %d", len(res.Rows))
	}
	// Index is maintained on new appends.
	mustExec(t, e, `INSERT INTO donate ("Z", "P", 45.5)`)
	e.Flush()
	res = mustExec(t, e, `SELECT * FROM donate WHERE amount BETWEEN 40 AND 49`)
	if len(res.Rows) != 11 {
		t.Errorf("after append rows = %d", len(res.Rows))
	}
	// Discrete index on a string column.
	if err := e.CreateIndex("donate", "donor"); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, e, `SELECT * FROM donate WHERE donor = "donor003"`)
	if len(res.Rows) != 10 {
		t.Errorf("discrete index rows = %d", len(res.Rows))
	}
	// Errors.
	if err := e.CreateIndex("ghost", "x"); err == nil {
		t.Error("index on missing table")
	}
	if err := e.CreateIndex("donate", "ghost"); err == nil {
		t.Error("index on missing column")
	}
}

func TestOffChainSelect(t *testing.T) {
	e := testEngine(t, Config{})
	if err := createDonorInfo(e); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT * FROM offchain.donorinfo WHERE age > 30`)
	if len(res.Rows) != 2 {
		t.Errorf("off-chain rows = %d", len(res.Rows))
	}
	res = mustExec(t, e, `SELECT donor FROM donorinfo WHERE age = 25`)
	if len(res.Rows) != 1 || res.Rows[0][0] != types.Str("alice") {
		t.Errorf("off-chain projection = %v", res.Rows)
	}
}

func createDonorInfo(e *Engine) error {
	db := e.OffChain()
	if err := db.CreateTable("donorinfo", []rdbms.Column{
		{Name: "donor", Kind: types.KindString}, {Name: "age", Kind: types.KindInt},
	}); err != nil {
		return err
	}
	rows := [][]types.Value{
		{types.Str("alice"), types.Int(25)},
		{types.Str("bob"), types.Int(35)},
		{types.Str("carol"), types.Int(45)},
	}
	for _, r := range rows {
		if err := db.Insert("donorinfo", r); err != nil {
			return err
		}
	}
	return nil
}

func TestOnChainJoinSQL(t *testing.T) {
	e := testEngine(t, Config{})
	mustExec(t, e, `CREATE transfer (project string, donor string, organization string, amount decimal)`)
	mustExec(t, e, `CREATE distribute (project string, donor string, organization string, donee string, amount decimal)`)
	mustExec(t, e, `INSERT INTO transfer ("edu", "jack", "school1", 100)`)
	mustExec(t, e, `INSERT INTO transfer ("edu", "mary", "school2", 200)`)
	mustExec(t, e, `INSERT INTO distribute ("edu", "jack", "school1", "tom", 50)`)
	mustExec(t, e, `INSERT INTO distribute ("edu", "jack", "school1", "ann", 25)`)
	e.Flush()
	res := mustExec(t, e, `SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization`)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	// Both sides' columns are present, prefixed.
	if res.Columns[0] != "transfer.tid" {
		t.Errorf("columns = %v", res.Columns[:3])
	}
}

func TestOnOffJoinSQL(t *testing.T) {
	e := testEngine(t, Config{})
	mustExec(t, e, `CREATE distribute (project string, donee string, amount decimal)`)
	mustExec(t, e, `INSERT INTO distribute ("edu", "alice", 10)`)
	mustExec(t, e, `INSERT INTO distribute ("edu", "bob", 20)`)
	mustExec(t, e, `INSERT INTO distribute ("edu", "ghost", 30)`)
	e.Flush()
	db := e.OffChain()
	db.CreateTable("doneeinfo", []rdbms.Column{
		{Name: "donee", Kind: types.KindString}, {Name: "income", Kind: types.KindDecimal}})
	db.Insert("doneeinfo", []types.Value{types.Str("alice"), types.Dec(1000)})
	db.Insert("doneeinfo", []types.Value{types.Str("bob"), types.Dec(2000)})

	res := mustExec(t, e, `SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee`)
	if len(res.Rows) != 2 {
		t.Fatalf("on-off join rows = %d", len(res.Rows))
	}
	// Flipped order normalises.
	res2 := mustExec(t, e, `SELECT * FROM offchain.doneeinfo, onchain.distribute ON distribute.donee = doneeinfo.donee`)
	if len(res2.Rows) != 2 {
		t.Errorf("flipped join rows = %d", len(res2.Rows))
	}
	// With a layered index on the join column the layered path is used.
	if err := e.CreateIndex("distribute", "donee"); err != nil {
		t.Fatal(err)
	}
	res3 := mustExec(t, e, `SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee`)
	if len(res3.Rows) != 2 {
		t.Errorf("layered on-off join rows = %d", len(res3.Rows))
	}
}

func TestSignatureVerificationOnSubmittedTxs(t *testing.T) {
	e := testEngine(t, Config{})
	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 42
	e.RegisterKey("org9", ed25519.NewKeyFromSeed(seed))
	mustExec(t, e, `CREATE t (a int)`)
	tx, err := e.NewTransaction("org9", "t", []types.Value{types.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !tx.VerifySig() {
		t.Error("registered sender's tx not signed")
	}
	// Unregistered sender gets an unsigned tx.
	tx2, _ := e.NewTransaction("anon", "t", []types.Value{types.Int(2)})
	if tx2.VerifySig() {
		t.Error("unregistered sender's tx claims a valid signature")
	}
}

func TestCacheModes(t *testing.T) {
	for _, mode := range []CacheMode{CacheNone, CacheBlocks, CacheTxs} {
		e := testEngine(t, Config{CacheMode: mode, CacheBytes: 1 << 20})
		seedDonation(t, e, 30, 10)
		if err := e.CreateIndex("donate", "amount"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			res := mustExec(t, e, `SELECT * FROM donate WHERE amount BETWEEN 0 AND 9`)
			if len(res.Rows) != 10 {
				t.Fatalf("mode %d: rows = %d", mode, len(res.Rows))
			}
		}
		cs := e.CacheStats()
		if mode == CacheNone && (cs.Hits+cs.Misses) != 0 {
			t.Errorf("CacheNone recorded traffic: %d/%d", cs.Hits, cs.Misses)
		}
		if mode != CacheNone && cs.Hits == 0 {
			t.Errorf("mode %d: repeated query produced no cache hits (misses=%d)", mode, cs.Misses)
		}
		if mode != CacheNone && (cs.Entries == 0 || cs.Bytes == 0) {
			t.Errorf("mode %d: cache occupancy not reported: %+v", mode, cs)
		}
	}
}

func TestCountStar(t *testing.T) {
	e := testEngine(t, Config{})
	seedDonation(t, e, 30, 10)
	res := mustExec(t, e, `SELECT COUNT(*) FROM donate`)
	if len(res.Rows) != 1 || res.Rows[0][0] != types.Int(30) {
		t.Errorf("COUNT(*) = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT COUNT(*) FROM donate WHERE amount BETWEEN 5 AND 14`)
	if res.Rows[0][0] != types.Int(10) {
		t.Errorf("filtered COUNT = %v", res.Rows[0][0])
	}
	// Off-chain count.
	if err := createDonorInfo(e); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, e, `SELECT COUNT(*) FROM offchain.donorinfo`)
	if res.Rows[0][0] != types.Int(3) {
		t.Errorf("off-chain COUNT = %v", res.Rows[0][0])
	}
	// COUNT in a join is rejected.
	if _, err := e.Execute(`SELECT COUNT(*) FROM a, b ON a.x = b.y`); err == nil {
		t.Error("COUNT join accepted")
	}
	// A column actually named count still works.
	mustExec(t, e, `CREATE counts (count int)`)
	e.Flush()
	mustExec(t, e, `INSERT INTO counts (7)`)
	e.Flush()
	res = mustExec(t, e, `SELECT count FROM counts`)
	if len(res.Rows) != 1 || res.Rows[0][0] != types.Int(7) {
		t.Errorf("column named count = %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	e := testEngine(t, Config{HistogramDepth: 10})
	seedDonation(t, e, 100, 10)
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Explain(`SELECT * FROM donate WHERE amount BETWEEN 10 AND 12`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != types.Str("layered") {
		t.Errorf("selective query explained as %v", res.Rows[0][0])
	}
	// Without a usable index the planner falls back to bitmap/scan.
	res, err = e.Explain(`SELECT * FROM donate WHERE donor = "donor001"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] == types.Str("layered") {
		t.Error("unindexed predicate explained as layered")
	}
	if _, err := e.Explain(`TRACE OPERATOR = "x"`); err == nil {
		t.Error("EXPLAIN of TRACE accepted")
	}
	if _, err := e.Explain(`SELECT * FROM ghost`); err == nil {
		t.Error("EXPLAIN of missing table accepted")
	}
}

func TestCreateAuthIndexOnEngine(t *testing.T) {
	e := testEngine(t, Config{HistogramDepth: 10})
	seedDonation(t, e, 40, 10)
	// Continuous app column, discrete app column, and a system column.
	for _, spec := range [][2]string{
		{"donate", "amount"}, {"donate", "donor"}, {"", "senid"},
	} {
		if err := e.CreateAuthIndex(spec[0], spec[1]); err != nil {
			t.Fatalf("CreateAuthIndex(%q,%q): %v", spec[0], spec[1], err)
		}
		if err := e.CreateAuthIndex(spec[0], spec[1]); err != nil {
			t.Errorf("idempotent CreateAuthIndex: %v", err)
		}
		if e.AuthIndex(spec[0], spec[1]) == nil {
			t.Errorf("AuthIndex(%q,%q) missing", spec[0], spec[1])
		}
	}
	// Errors.
	if err := e.CreateAuthIndex("ghost", "x"); err == nil {
		t.Error("ALI on missing table")
	}
	if err := e.CreateAuthIndex("donate", "ghost"); err == nil {
		t.Error("ALI on missing column")
	}
	if err := e.CreateAuthIndex("", "ghostsys"); err == nil {
		t.Error("ALI on missing system column")
	}
	// ALIs are maintained on append (recordsFor path).
	before := e.AuthIndex("donate", "amount").Blocks()
	mustExec(t, e, `INSERT INTO donate ("new", "p", 3.5)`)
	e.Flush()
	if after := e.AuthIndex("donate", "amount").Blocks(); after <= before {
		t.Errorf("ALI not maintained: %d -> %d blocks", before, after)
	}
	// Catalog and Headers accessors.
	if !e.Catalog().Has("donate") {
		t.Error("Catalog accessor broken")
	}
	if len(e.Headers()) != int(e.Height()) {
		t.Error("Headers accessor broken")
	}
}

func TestIndexDefinitionsPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, Config{Dir: dir, HistogramDepth: 10})
	seedDonation(t, e, 20, 5)
	if err := e.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateAuthIndex("", "senid"); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2 := testEngine(t, Config{Dir: dir, HistogramDepth: 10})
	if e2.Layered("donate", "amount") == nil {
		t.Error("layered index not replayed on reopen")
	}
	if e2.AuthIndex("donate", "amount") == nil || e2.AuthIndex("", "senid") == nil {
		t.Error("auth indexes not replayed on reopen")
	}
	// And they are functional.
	res := mustExec(t, e2, `SELECT COUNT(*) FROM donate WHERE amount BETWEEN 3 AND 7`)
	if res.Rows[0][0] != types.Int(5) {
		t.Errorf("replayed index query = %v", res.Rows[0][0])
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := testEngine(t, Config{})
	seedDonation(t, e, 20, 5)
	res := mustExec(t, e, `SELECT amount FROM donate ORDER BY amount DESC LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("LIMIT rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Float() != 19 || res.Rows[2][0].Float() != 17 {
		t.Errorf("ORDER BY DESC rows = %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT * FROM donate ORDER BY amount ASC LIMIT 2`)
	if res.Rows[0][6].Float() != 0 {
		t.Errorf("ORDER BY ASC first = %v", res.Rows[0])
	}
	// ORDER BY on a system column.
	res = mustExec(t, e, `SELECT tid FROM donate ORDER BY tid DESC LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Fatal("tid order failed")
	}
	// Unknown order column fails.
	if _, err := e.Execute(`SELECT amount FROM donate ORDER BY ghost`); err == nil {
		t.Error("ORDER BY missing column accepted")
	}
	// Off-chain path honours order/limit too.
	if err := createDonorInfo(e); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, e, `SELECT donor FROM donorinfo ORDER BY age DESC LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0] != types.Str("carol") {
		t.Errorf("off-chain order/limit = %v", res.Rows)
	}
}
