package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sebdb/internal/clock"
	"sebdb/internal/faultfs"
	"sebdb/internal/types"
)

// donateTx builds one deterministic donate transaction with a synthetic
// time axis, matching seedDonation's stream.
func donateTx(t testing.TB, e *Engine, i int) *types.Transaction {
	t.Helper()
	tx, err := e.NewTransaction(fmt.Sprintf("org%d", i%3), "donate", []types.Value{
		types.Str(fmt.Sprintf("donor%03d", i%10)),
		types.Str("education"),
		types.Dec(float64(i)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tx.Ts = int64(i+1) * 1000
	return tx
}

// TestCommitPipelineEquivalence is the pipeline's correctness anchor: a
// serial engine (Parallelism 1) and a pipelined engine (Parallelism 8)
// fed the identical transaction stream must produce byte-identical
// blocks, identical header hashes, and identical answers from every
// index family including the ALIs' verified results.
func TestCommitPipelineEquivalence(t *testing.T) {
	build := func(par int) *Engine {
		e := testEngine(t, Config{BlockMaxTxs: 4, Parallelism: par, Clock: clock.Fixed(1)})
		seedDonation(t, e, 60, 4)
		if err := e.CreateIndex("donate", "amount"); err != nil {
			t.Fatal(err)
		}
		if err := e.CreateAuthIndex("donate", "amount"); err != nil {
			t.Fatal(err)
		}
		if err := e.CreateAuthIndex("donate", "donor"); err != nil {
			t.Fatal(err)
		}
		// A post-index tail so index maintenance (not only backfill) runs
		// on both engines.
		for i := 60; i < 84; i += 4 {
			batch := make([]*types.Transaction, 4)
			for j := range batch {
				batch[j] = donateTx(t, e, i+j)
			}
			if _, err := e.CommitBlock(batch, int64(i+4)*1000); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	serial, piped := build(1), build(8)

	if serial.Height() != piped.Height() {
		t.Fatalf("heights diverge: serial %d vs pipelined %d", serial.Height(), piped.Height())
	}
	for h := uint64(0); h < serial.Height(); h++ {
		bs, err := serial.store.Block(h)
		if err != nil {
			t.Fatal(err)
		}
		bp, err := piped.store.Block(h)
		if err != nil {
			t.Fatal(err)
		}
		if bs.Header.Hash() != bp.Header.Hash() {
			t.Fatalf("block %d: header hashes diverge", h)
		}
		if !bytes.Equal(bs.EncodeBytes(), bp.EncodeBytes()) {
			t.Fatalf("block %d: encodings diverge", h)
		}
	}
	if fs, fp := recoveryFingerprint(t, serial), recoveryFingerprint(t, piped); fs != fp {
		t.Errorf("query answers diverge:\n--- serial ---\n%s--- pipelined ---\n%s", fs, fp)
	}
}

// TestCommitPipelineFlushGroupFsync pins the group-fsync batching: one
// FlushAt spanning several blocks issues exactly one fsync, while each
// standalone CommitBlock issues its own.
func TestCommitPipelineFlushGroupFsync(t *testing.T) {
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	e := testEngine(t, Config{BlockMaxTxs: 2, Sync: true, FS: inj, Clock: clock.Fixed(1)})
	mustExec(t, e, `CREATE donate (donor string, project string, amount decimal)`)
	if err := e.FlushAt(1); err != nil {
		t.Fatal(err)
	}
	h0 := e.Height()

	txs := make([]*types.Transaction, 10)
	for i := range txs {
		txs[i] = donateTx(t, e, i)
	}
	e.mu.Lock()
	e.mempool = append(e.mempool, txs...)
	e.mu.Unlock()

	base := inj.Syncs()
	if err := e.FlushAt(20_000); err != nil {
		t.Fatal(err)
	}
	if got := e.Height() - h0; got != 5 {
		t.Fatalf("flush packaged %d blocks, want 5", got)
	}
	if got := inj.Syncs() - base; got != 1 {
		t.Fatalf("5-block flush issued %d fsyncs, want 1", got)
	}

	base = inj.Syncs()
	for i := 10; i < 13; i++ {
		if _, err := e.CommitBlock([]*types.Transaction{donateTx(t, e, i)}, int64(i+1)*10_000); err != nil {
			t.Fatal(err)
		}
	}
	if got := inj.Syncs() - base; got != 3 {
		t.Fatalf("3 standalone commits issued %d fsyncs, want 3", got)
	}
}

// TestCommitPipelineRaceStress hammers the staged write path from every
// side at once: a leader committing blocks, a follower applying them,
// SELECT/TRACE readers on both, and periodic checkpoint builds. Run
// with -race this is the pipeline's lock-discipline regression test.
func TestCommitPipelineRaceStress(t *testing.T) {
	leader := testEngine(t, Config{BlockMaxTxs: 4, Parallelism: 4, CheckpointInterval: 7})
	follower := testEngine(t, Config{BlockMaxTxs: 4, Parallelism: 4})
	seedDonation(t, leader, 20, 4)
	if err := leader.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := leader.CreateAuthIndex("donate", "donor"); err != nil {
		t.Fatal(err)
	}
	// Bring the follower to the leader's tip, then mirror its indexes so
	// the apply path maintains them too.
	for h := uint64(0); h < leader.Height(); h++ {
		b, err := leader.store.Block(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := follower.ApplyBlock(b); err != nil {
			t.Fatalf("apply block %d: %v", h, err)
		}
	}
	if err := follower.CreateIndex("donate", "amount"); err != nil {
		t.Fatal(err)
	}
	if err := follower.CreateAuthIndex("donate", "donor"); err != nil {
		t.Fatal(err)
	}

	const rounds = 40
	blocks := make(chan *types.Block, rounds)
	done := make(chan struct{})
	var writers, readers sync.WaitGroup

	writers.Add(1)
	go func() { // leader writer
		defer writers.Done()
		defer close(blocks)
		for i := 0; i < rounds; i++ {
			batch := make([]*types.Transaction, 4)
			for j := range batch {
				batch[j] = donateTx(t, leader, 20+i*4+j)
			}
			b, err := leader.CommitBlock(batch, int64(21+i)*1000)
			if err != nil {
				t.Error(err)
				return
			}
			blocks <- b
		}
	}()
	writers.Add(1)
	go func() { // follower applier
		defer writers.Done()
		for b := range blocks {
			if err := follower.ApplyBlock(b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	writers.Add(1)
	go func() { // checkpoint builder, racing the commits
		defer writers.Done()
		for i := 0; i < 5; i++ {
			if err := leader.WriteCheckpoint(); err != nil {
				t.Errorf("WriteCheckpoint: %v", err)
				return
			}
		}
	}()
	for _, e := range []*Engine{leader, follower} {
		e := e
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() { // readers, spinning until the writers finish
				defer readers.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					for _, q := range []string{
						`SELECT * FROM donate WHERE amount >= 3 AND amount <= 40`,
						`TRACE OPERATOR = "org1"`,
					} {
						if _, err := e.Execute(q); err != nil {
							t.Errorf("Execute(%q): %v", q, err)
							return
						}
					}
				}
			}()
		}
	}

	writers.Wait()
	close(done)
	readers.Wait()

	if leader.Height() != follower.Height() {
		t.Fatalf("heights diverge: leader %d vs follower %d", leader.Height(), follower.Height())
	}
	if fl, ff := recoveryFingerprint(t, leader), recoveryFingerprint(t, follower); fl != ff {
		t.Errorf("leader and follower answers diverge:\n--- leader ---\n%s--- follower ---\n%s", fl, ff)
	}
}

// groupFsyncCycle is the deterministic batch under crash test: stuff 12
// transactions into the mempool and flush them as one group-fsynced
// batch of 4 blocks. Fixed clock, fixed flush timestamp and the
// deterministic default signer key make every run produce byte-identical
// blocks, so a crash run's surviving chain can be compared header by
// header against the rehearsal's.
func groupFsyncCycle(t testing.TB, e *Engine) error {
	t.Helper()
	txs := make([]*types.Transaction, 12)
	for i := range txs {
		txs[i] = donateTx(t, e, 18+i)
	}
	e.mu.Lock()
	e.mempool = append(e.mempool, txs...)
	e.mu.Unlock()
	return e.FlushAt(100_000)
}

// TestGroupFsyncCrashMatrix crashes the filesystem at every mutating
// operation of a group-fsynced multi-block flush. Whatever the crash
// point, the rebooted chain must be an exact prefix of the crash-free
// run — batched fsync may lose an unsynced suffix, never tear a hole —
// and the checkpoint and full-replay recovery paths must agree.
func TestGroupFsyncCrashMatrix(t *testing.T) {
	seed := t.TempDir()
	se, err := Open(Config{Dir: seed, BlockMaxTxs: 3, Clock: clock.Fixed(1)})
	if err != nil {
		t.Fatal(err)
	}
	seedDonation(t, se, 18, 3)
	seedHeight := se.Height()
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}

	// Rehearsal: run the cycle crash-free to capture the op count and
	// the canonical post-flush chain.
	rehearsal := t.TempDir()
	copyTree(t, seed, rehearsal)
	inj := faultfs.New(faultfs.Options{OpsBeforeCrash: -1})
	re, err := Open(Config{Dir: rehearsal, BlockMaxTxs: 3, Sync: true, FS: inj, Clock: clock.Fixed(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := groupFsyncCycle(t, re); err != nil {
		t.Fatal(err)
	}
	wantHeaders := re.Headers()
	finalHeight := re.Height()
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	total := inj.Mutations()
	if total < 6 || finalHeight != seedHeight+4 {
		t.Fatalf("rehearsal: %d mutating ops, height %d -> %d", total, seedHeight, finalHeight)
	}

	for k := 0; k < total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, seed, dir)
			inj := faultfs.New(faultfs.Options{OpsBeforeCrash: k})
			e, err := Open(Config{Dir: dir, BlockMaxTxs: 3, Sync: true, FS: inj, Clock: clock.Fixed(1)})
			if err == nil {
				//sebdb:ignore-err crash-injected flush may fail by design
				groupFsyncCycle(t, e)
				//sebdb:ignore-err crashed engine teardown
				e.Close()
			}
			if !inj.Crashed() {
				t.Fatalf("crash point %d never reached", k)
			}

			fast, err := Open(Config{Dir: dir})
			if err != nil {
				t.Fatalf("reboot (checkpoint path): %v", err)
			}
			defer fast.Close()
			full, err := Open(Config{Dir: dir, DisableCheckpointLoad: true})
			if err != nil {
				t.Fatalf("reboot (full replay): %v", err)
			}
			defer full.Close()

			h := fast.Height()
			if full.Height() != h {
				t.Fatalf("heights diverge: checkpoint %d vs full %d", h, full.Height())
			}
			if h < seedHeight || h > finalHeight {
				t.Fatalf("recovered height %d outside [%d, %d]", h, seedHeight, finalHeight)
			}
			// Prefix, never a gap: every surviving block is the one the
			// crash-free run committed at that height.
			for i, hdr := range fast.Headers() {
				if hdr.Hash() != wantHeaders[i].Hash() {
					t.Fatalf("crash at op %d: block %d diverges from the crash-free chain", k, i)
				}
			}
			if ff, fu := recoveryFingerprint(t, fast), recoveryFingerprint(t, full); ff != fu {
				t.Fatalf("crash at op %d: recovery paths diverge:\n--- checkpoint ---\n%s--- full ---\n%s", k, ff, fu)
			}
		})
	}
}
