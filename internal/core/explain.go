package core

import (
	"context"
	"fmt"
	"strings"

	"sebdb/internal/obs"
	"sebdb/internal/plan"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// Explain parses a SELECT (with or without an EXPLAIN prefix) and
// reports the planner's access-path decision with the estimated costs
// of Equations 1-3. The SQL form `EXPLAIN [ANALYZE] <stmt>` goes
// through Execute; this method is the programmatic shortcut.
func (e *Engine) Explain(sql string) (*Result, error) {
	st, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if ex, ok := st.(*sqlparser.Explain); ok {
		st = ex.Stmt
	}
	s, ok := st.(*sqlparser.Select)
	if !ok {
		return nil, fmt.Errorf("core: EXPLAIN supports single-table SELECT, got %T", st)
	}
	return e.explainSelect(s)
}

// explainSelect reports the plan.Choose decision for one on-chain
// SELECT without executing it, planning against the current view just
// as execSelect would.
func (e *Engine) explainSelect(s *sqlparser.Select) (*Result, error) {
	v := e.CurrentView()
	if !v.HasTable(s.Table.Name) || s.Table.Chain == sqlparser.ChainOff {
		return nil, fmt.Errorf("core: EXPLAIN supports on-chain tables")
	}
	tbl, err := v.Table(s.Table.Name)
	if err != nil {
		return nil, err
	}
	n := v.NumBlocks()
	k := v.TableBlocks(tbl.Name).Count()
	p, hasLayered := v.estimateLayered(tbl, s.Where)
	if !hasLayered {
		p = -1
	}
	ch := plan.Choose(plan.DefaultCostModel(), n, k, p)
	cost := func(c float64) types.Value {
		if c < 0 {
			return types.Null
		}
		return types.Dec(c)
	}
	return &Result{
		Columns: []string{"method", "blocks", "table_blocks", "est_rows",
			"cost_scan", "cost_bitmap", "cost_layered"},
		Rows: [][]types.Value{{
			types.Str(ch.Method.String()),
			types.Int(int64(n)),
			types.Int(int64(k)),
			types.Int(int64(p)),
			cost(ch.CostScan),
			cost(ch.CostBitmap),
			cost(ch.CostLayered),
		}},
	}, nil
}

// execExplain handles EXPLAIN [ANALYZE] <stmt>. Plain EXPLAIN reports
// the planner decision; ANALYZE executes the statement under a query
// trace and renders the resulting span tree — one row per stage with
// its wall time (registry clock) and physical counters.
func (e *Engine) execExplain(ctx context.Context, sender string, s *sqlparser.Explain) (*Result, error) {
	if !s.Analyze {
		sel, ok := s.Stmt.(*sqlparser.Select)
		if !ok {
			return nil, fmt.Errorf("core: EXPLAIN supports single-table SELECT, got %T (EXPLAIN ANALYZE runs any read statement)", s.Stmt)
		}
		return e.explainSelect(sel)
	}
	switch s.Stmt.(type) {
	case *sqlparser.Select, *sqlparser.Trace, *sqlparser.Join, *sqlparser.GetBlock:
	default:
		return nil, fmt.Errorf("core: EXPLAIN ANALYZE supports read statements, got %T", s.Stmt)
	}
	tctx, root := obs.NewTrace(ctx, e.cfg.Obs, "query")
	// Re-parse the statement text inside the trace so the parse stage
	// carries a real wall time; the result replaces the pre-parsed AST.
	_, psp := obs.StartSpan(tctx, "parse")
	st, err := sqlparser.Parse(s.Src)
	psp.Finish()
	if err != nil {
		return nil, err
	}
	_, err = e.executeStmt(tctx, sender, st, nil)
	root.Finish()
	if err != nil {
		return nil, err
	}
	return renderTrace(root), nil
}

// spanCells renders one span's shared trace columns — the indented
// stage name, duration and the well-known exec counters — returning the
// remaining counters as "name=value" detail pairs. renderTrace (EXPLAIN
// ANALYZE, ExplainRecovery) and execShowTraces both build on it.
func spanCells(sp *obs.Span, depth int) (cells []types.Value, detail []string) {
	br, te, ip := types.Null, types.Null, types.Null
	for _, c := range sp.Counters() {
		switch c.Name {
		case "blocks_read":
			br = types.Int(c.Value)
		case "txs_examined":
			te = types.Int(c.Value)
		case "index_probes":
			ip = types.Int(c.Value)
		default:
			detail = append(detail, fmt.Sprintf("%s=%d", c.Name, c.Value))
		}
	}
	return []types.Value{
		types.Str(strings.Repeat("  ", depth) + sp.Name()),
		types.Int(sp.DurationMicros()),
		br, te, ip,
	}, detail
}

// renderTrace flattens a finished span tree depth-first into result
// rows. The well-known exec counters get their own columns; everything
// else lands in detail as "name=value" pairs.
func renderTrace(root *obs.Span) *Result {
	res := &Result{Columns: []string{
		"stage", "micros", "blocks_read", "txs_examined", "index_probes", "detail"}}
	var walk func(sp *obs.Span, depth int)
	walk = func(sp *obs.Span, depth int) {
		cells, rest := spanCells(sp, depth)
		res.Rows = append(res.Rows, append(cells, types.Str(strings.Join(rest, " "))))
		for _, ch := range sp.Children() {
			walk(ch, depth+1)
		}
	}
	walk(root, 0)
	return res
}
