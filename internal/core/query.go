package core

import (
	"context"
	"fmt"
	"sort"

	"sebdb/internal/accessctl"
	"sebdb/internal/contract"
	"sebdb/internal/exec"
	"sebdb/internal/obs"
	"sebdb/internal/plan"
	"sebdb/internal/rdbms"
	"sebdb/internal/schema"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]types.Value
}

// Execute parses and runs one SQL-like statement as the configured
// default sender. Placeholders ('?') in INSERT are bound from params.
func (e *Engine) Execute(sql string, params ...types.Value) (*Result, error) {
	return e.ExecuteAs(e.cfg.DefaultSender, sql, params...)
}

// ExecuteAs runs a statement on behalf of the given sender identity.
// Every statement runs under the flight recorder (Config.Recorder):
// sampled statements carry a trace the execution stages report into,
// and slow statements are captured into the slow-query ring whether
// sampled or not. A nil recorder costs one nil check.
func (e *Engine) ExecuteAs(sender, sql string, params ...types.Value) (*Result, error) {
	ctx, stmt := e.cfg.Recorder.Begin(context.Background(), sql)
	_, parseSp := obs.StartSpan(ctx, "parse")
	st, err := sqlparser.Parse(sql)
	parseSp.Finish()
	if err != nil {
		stmt.Finish(err)
		return nil, err
	}
	stmt.SetStage(stmtKind(st))
	res, err := e.executeStmt(ctx, sender, st, params)
	stmt.Finish(err)
	return res, err
}

// stmtKind names a parsed statement's kind for the recorder's per-kind
// stages ("stmt.select", "stmt.insert", ...).
func stmtKind(st sqlparser.Statement) string {
	switch st.(type) {
	case *sqlparser.CreateTable:
		return "create"
	case *sqlparser.Insert:
		return "insert"
	case *sqlparser.Select:
		return "select"
	case *sqlparser.Join:
		return "join"
	case *sqlparser.Trace:
		return "trace"
	case *sqlparser.GetBlock:
		return "getblock"
	case *sqlparser.Explain:
		return "explain"
	case *sqlparser.ShowTraces:
		return "showtraces"
	default:
		return "other"
	}
}

// executeStmt checks access and dispatches one parsed statement. The
// context carries the query trace when the statement runs under
// EXPLAIN ANALYZE; every stage below propagates it.
func (e *Engine) executeStmt(ctx context.Context, sender string, st sqlparser.Statement, params []types.Value) (*Result, error) {
	if err := e.checkAccess(sender, st); err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *sqlparser.CreateTable:
		return e.execCreate(sender, s)
	case *sqlparser.Insert:
		return e.execInsert(sender, s, params)
	case *sqlparser.Select:
		return e.execSelect(ctx, s)
	case *sqlparser.Join:
		return e.execJoin(ctx, s)
	case *sqlparser.Trace:
		return e.execTrace(ctx, s)
	case *sqlparser.GetBlock:
		return e.execGetBlock(ctx, s)
	case *sqlparser.Explain:
		return e.execExplain(ctx, sender, s)
	case *sqlparser.ShowTraces:
		return e.execShowTraces(s)
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", st)
	}
}

// execCreate registers the table locally and emits the schema-sync
// transaction so peers replay the same DDL (§IV-A). The registration
// precedes the submit — the deploying node must see its own table at
// once — so a failed submit rolls it back; without the rollback the
// local catalog would claim a table the chain never defines, forever
// diverging from every peer.
func (e *Engine) execCreate(sender string, s *sqlparser.CreateTable) (*Result, error) {
	tbl, err := schema.NewTable(s.Name, s.Columns)
	if err != nil {
		return nil, err
	}
	if err := e.catalog.Define(tbl); err != nil {
		return nil, err
	}
	e.publishView()
	tx := &types.Transaction{
		Ts:    e.nowMicro(),
		SenID: sender,
		Tname: schema.MetaTable,
		Args:  tbl.EncodeDDL(),
	}
	e.signFor(tx, sender)
	if err := e.Submit(tx); err != nil {
		// A sync failure after the block committed leaves the tx on chain;
		// only roll back when it never made it.
		if !e.txCommitted(tx) {
			e.catalog.Undefine(tbl.Name)
			e.publishView()
			e.log.Warn("table create rolled back", "table", tbl.Name, "err", err)
		}
		return nil, err
	}
	e.log.Info("table created", "table", tbl.Name, "sender", sender)
	return &Result{Columns: []string{"status"}, Rows: [][]types.Value{{types.Str("created " + tbl.Name)}}}, nil
}

func (e *Engine) execInsert(sender string, s *sqlparser.Insert, params []types.Value) (*Result, error) {
	if len(params) != len(s.Params) {
		return nil, fmt.Errorf("core: statement has %d placeholders, got %d params",
			len(s.Params), len(params))
	}
	vals := append([]types.Value(nil), s.Values...)
	for i, pos := range s.Params {
		vals[pos] = params[i]
	}
	tx, err := e.NewTransaction(sender, s.Table, vals)
	if err != nil {
		return nil, err
	}
	if err := e.Submit(tx); err != nil {
		return nil, err
	}
	return &Result{Columns: []string{"status"}, Rows: [][]types.Value{{types.Str("queued")}}}, nil
}

func predBoundsOf(p sqlparser.Pred) (types.Value, types.Value, bool) {
	switch p.Op {
	case sqlparser.OpEq:
		return p.Val, p.Val, true
	case sqlparser.OpBetween:
		return p.Val, p.Hi, true
	default:
		return types.Null, types.Null, false
	}
}

// execSelect plans and runs a single-table query, on or off chain. The
// whole statement — planning, execution, projection — runs against one
// pinned view, so it touches no engine lock and a concurrent commit
// can never shift the height mid-query.
func (e *Engine) execSelect(ctx context.Context, s *sqlparser.Select) (*Result, error) {
	v := e.pinView(ctx)
	onChain := v.HasTable(s.Table.Name)
	switch s.Table.Chain {
	case sqlparser.ChainOn:
		if !onChain {
			return nil, fmt.Errorf("core: no on-chain table %q", s.Table.Name)
		}
	case sqlparser.ChainOff:
		onChain = false
	case sqlparser.ChainDefault:
		if !onChain && !e.offDB.HasTable(s.Table.Name) {
			return nil, fmt.Errorf("core: no such table %q", s.Table.Name)
		}
	}
	if !onChain {
		return e.selectOffChain(s)
	}

	tbl, err := v.Table(s.Table.Name)
	if err != nil {
		return nil, err
	}
	_, planSp := obs.StartSpan(ctx, "plan")
	n := v.NumBlocks()
	k := v.TableBlocks(tbl.Name).Count()
	p, hasLayered := v.estimateLayered(tbl, s.Where)
	if !hasLayered {
		p = -1
	}
	choice := plan.Choose(plan.DefaultCostModel(), n, k, p)
	planSp.SetCounter("blocks", int64(n))
	planSp.SetCounter("table_blocks", int64(k))
	planSp.SetCounter("est_rows", int64(p))
	planSp.Finish()
	txs, _, err := exec.SelectCtx(ctx, v, tbl.Name, s.Where, s.Window, choice.Method)
	if err != nil {
		return nil, err
	}
	if s.Count {
		return &Result{Columns: []string{"count"},
			Rows: [][]types.Value{{types.Int(int64(len(txs)))}}}, nil
	}
	_, projSp := obs.StartSpan(ctx, "project")
	defer projSp.Finish()
	projSp.SetCounter("rows", int64(len(txs)))
	// ORDER BY sorts on the full tuple before projection, so the sort
	// column need not appear in the select list.
	if s.OrderBy != "" {
		if _, _, err := tbl.ColumnKind(s.OrderBy); err != nil {
			return nil, err
		}
		var serr error
		sort.SliceStable(txs, func(a, b int) bool {
			va, err := tbl.Value(txs[a], s.OrderBy)
			if err != nil {
				serr = err
			}
			vb, err := tbl.Value(txs[b], s.OrderBy)
			if err != nil {
				serr = err
			}
			cmp := types.Compare(va, vb)
			if s.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
		if serr != nil {
			return nil, serr
		}
	}
	if s.Limit > 0 && len(txs) > s.Limit {
		txs = txs[:s.Limit]
	}
	return e.projectTxs(tbl, s.Columns, txs)
}

// orderLimitRows sorts full off-chain rows by the named column and
// truncates, before any projection.
func orderLimitRows(rows [][]types.Value, names []string, s *sqlparser.Select) ([][]types.Value, error) {
	if s.OrderBy != "" {
		ci := -1
		for i, c := range names {
			if c == s.OrderBy {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, fmt.Errorf("core: ORDER BY column %q not in table", s.OrderBy)
		}
		sort.SliceStable(rows, func(a, b int) bool {
			cmp := types.Compare(rows[a][ci], rows[b][ci])
			if s.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	if s.Limit > 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	return rows, nil
}

// selectOffChain evaluates a SELECT against the local RDBMS.
func (e *Engine) selectOffChain(s *sqlparser.Select) (*Result, error) {
	cols, err := e.offDB.Columns(s.Table.Name)
	if err != nil {
		return nil, err
	}
	var preds []rdbms.Pred
	for _, p := range s.Where {
		ci, err := e.offDB.ColIndex(s.Table.Name, p.Col)
		if err != nil {
			return nil, err
		}
		pc := p
		preds = append(preds, func(r rdbms.Row) bool {
			cmp := types.Compare(r[ci], pc.Val)
			switch pc.Op {
			case sqlparser.OpEq:
				return cmp == 0
			case sqlparser.OpNe:
				return cmp != 0
			case sqlparser.OpLt:
				return cmp < 0
			case sqlparser.OpLe:
				return cmp <= 0
			case sqlparser.OpGt:
				return cmp > 0
			case sqlparser.OpGe:
				return cmp >= 0
			case sqlparser.OpBetween:
				return cmp >= 0 && types.Compare(r[ci], pc.Hi) <= 0
			}
			return false
		})
	}
	rows, err := e.offDB.Select(s.Table.Name, preds...)
	if err != nil {
		return nil, err
	}
	if s.Count {
		return &Result{Columns: []string{"count"},
			Rows: [][]types.Value{{types.Int(int64(len(rows)))}}}, nil
	}

	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	rows, err = orderLimitRows(rows, names, s)
	if err != nil {
		return nil, err
	}
	if s.Columns == nil {
		return &Result{Columns: names, Rows: rows}, nil
	}
	idxs := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		ci, err := e.offDB.ColIndex(s.Table.Name, c)
		if err != nil {
			return nil, err
		}
		idxs[i] = ci
	}
	out := make([][]types.Value, len(rows))
	for r, row := range rows {
		pr := make([]types.Value, len(idxs))
		for i, ci := range idxs {
			pr[i] = row[ci]
		}
		out[r] = pr
	}
	return &Result{Columns: s.Columns, Rows: out}, nil
}

// projectTxs renders transactions as result rows for the requested
// columns (all system + application columns for SELECT *).
func (e *Engine) projectTxs(tbl *schema.Table, cols []string, txs []*types.Transaction) (*Result, error) {
	if cols == nil {
		cols = tbl.AllColumnNames()
	}
	res := &Result{Columns: cols, Rows: make([][]types.Value, 0, len(txs))}
	for _, tx := range txs {
		row := make([]types.Value, len(cols))
		for i, c := range cols {
			v, err := tbl.Value(tx, c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// execTrace runs the track-trace operation; the global system-column
// indexes always exist, so the layered path of Algorithm 1 is used. It
// runs against a pinned view like execSelect.
func (e *Engine) execTrace(ctx context.Context, s *sqlparser.Trace) (*Result, error) {
	txs, _, err := exec.TrackCtx(ctx, e.pinView(ctx), s, exec.MethodLayered)
	if err != nil {
		return nil, err
	}
	cols := []string{"tid", "ts", "senid", "tname"}
	res := &Result{Columns: cols, Rows: make([][]types.Value, 0, len(txs))}
	for _, tx := range txs {
		res.Rows = append(res.Rows, []types.Value{
			types.Int(int64(tx.Tid)), types.Time(tx.Ts), types.Str(tx.SenID), types.Str(tx.Tname),
		})
	}
	return res, nil
}

// execJoin dispatches on-chain vs on-off-chain joins, both sides over
// one pinned view.
func (e *Engine) execJoin(ctx context.Context, s *sqlparser.Join) (*Result, error) {
	v := e.pinView(ctx)
	leftOn := s.Left.Chain != sqlparser.ChainOff && v.HasTable(s.Left.Name)
	rightOn := s.Right.Chain != sqlparser.ChainOff && v.HasTable(s.Right.Name)

	switch {
	case leftOn && rightOn:
		m := exec.MethodBitmap
		if v.Layered(s.Left.Name, s.LeftCol) != nil && v.Layered(s.Right.Name, s.RightCol) != nil {
			m = exec.MethodLayered
		}
		rows, _, err := exec.OnChainJoinCtx(ctx, v, s.Left.Name, s.Right.Name, s.LeftCol, s.RightCol, s.Window, m)
		if err != nil {
			return nil, err
		}
		return e.projectJoin(v, s, rows)
	case leftOn && !rightOn:
		m := exec.MethodBitmap
		if v.Layered(s.Left.Name, s.LeftCol) != nil {
			m = exec.MethodLayered
		}
		rows, _, err := exec.OnOffJoinCtx(ctx, v, e.offDB, s.Left.Name, s.LeftCol, s.Right.Name, s.RightCol, s.Window, m)
		if err != nil {
			return nil, err
		}
		return e.projectOnOff(v, s.Left.Name, s.Right.Name, rows)
	case !leftOn && rightOn:
		// Normalise to on-chain ⋈ off-chain.
		flipped := &sqlparser.Join{
			Left: s.Right, Right: s.Left,
			LeftCol: s.RightCol, RightCol: s.LeftCol,
			Window: s.Window,
		}
		return e.execJoin(ctx, flipped)
	default:
		return nil, fmt.Errorf("core: join between two off-chain tables belongs in the RDBMS")
	}
}

func (e *Engine) projectJoin(v *View, s *sqlparser.Join, rows []exec.JoinRow) (*Result, error) {
	lt, err := v.Table(s.Left.Name)
	if err != nil {
		return nil, err
	}
	rt, err := v.Table(s.Right.Name)
	if err != nil {
		return nil, err
	}
	var cols []string
	for _, c := range lt.AllColumnNames() {
		cols = append(cols, lt.Name+"."+c)
	}
	for _, c := range rt.AllColumnNames() {
		cols = append(cols, rt.Name+"."+c)
	}
	res := &Result{Columns: cols, Rows: make([][]types.Value, 0, len(rows))}
	for _, jr := range rows {
		row := make([]types.Value, 0, len(cols))
		for _, c := range lt.AllColumnNames() {
			v, err := lt.Value(jr.Left, c)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		for _, c := range rt.AllColumnNames() {
			v, err := rt.Value(jr.Right, c)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (e *Engine) projectOnOff(v *View, onName, offName string, rows []exec.OnOffRow) (*Result, error) {
	tbl, err := v.Table(onName)
	if err != nil {
		return nil, err
	}
	offCols, err := e.offDB.Columns(offName)
	if err != nil {
		return nil, err
	}
	var cols []string
	for _, c := range tbl.AllColumnNames() {
		cols = append(cols, onName+"."+c)
	}
	for _, c := range offCols {
		cols = append(cols, offName+"."+c.Name)
	}
	res := &Result{Columns: cols, Rows: make([][]types.Value, 0, len(rows))}
	for _, r := range rows {
		row := make([]types.Value, 0, len(cols))
		for _, c := range tbl.AllColumnNames() {
			v, err := tbl.Value(r.Tx, c)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		row = append(row, r.Row...)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// execGetBlock implements GET BLOCK ID|TID|TS=? (Q7) through the
// pinned view's block-level index.
func (e *Engine) execGetBlock(ctx context.Context, s *sqlparser.GetBlock) (*Result, error) {
	// Block ids and Tids are unsigned; a negative literal would wrap to
	// a huge id under the uint64 conversion instead of failing.
	if s.Val < 0 && s.By != sqlparser.ByTs {
		return nil, fmt.Errorf("core: GET BLOCK ID/TID must be non-negative, got %d", s.Val)
	}
	v := e.pinView(ctx)
	bidx := v.BlockIdx()
	var bid uint64
	var ok bool
	switch s.By {
	case sqlparser.ByID:
		bid, ok = uint64(s.Val), bidx.ByBlockID(uint64(s.Val))
	case sqlparser.ByTid:
		bid, ok = bidx.ByTid(uint64(s.Val))
	case sqlparser.ByTs:
		bid, ok = bidx.ByTime(s.Val)
	}
	if !ok {
		return nil, fmt.Errorf("core: no block for %v", s.Val)
	}
	b, err := v.Block(bid)
	if err != nil {
		return nil, err
	}
	h := b.Header
	hash := h.Hash()
	prev := h.PrevHash
	return &Result{
		Columns: []string{"height", "timestamp", "txcount", "firsttid", "hash", "prevhash", "signer"},
		Rows: [][]types.Value{{
			types.Int(int64(h.Height)),
			types.Time(h.Timestamp),
			types.Int(int64(h.TxCount)),
			types.Int(int64(h.FirstTid)),
			types.Str(fmt.Sprintf("%x", hash[:8])),
			types.Str(fmt.Sprintf("%x", prev[:8])),
			types.Str(h.Signer),
		}},
	}, nil
}

// checkAccess enforces the channel permissions of the application
// layer before any statement executes.
func (e *Engine) checkAccess(sender string, st sqlparser.Statement) error {
	switch s := st.(type) {
	case *sqlparser.CreateTable:
		return e.acl.Check(sender, s.Name, accessctl.OpWrite)
	case *sqlparser.Insert:
		return e.acl.Check(sender, s.Table, accessctl.OpWrite)
	case *sqlparser.Select:
		return e.acl.Check(sender, s.Table.Name, accessctl.OpRead)
	case *sqlparser.Join:
		return e.acl.CheckAll(sender, []string{s.Left.Name, s.Right.Name}, accessctl.OpRead)
	case *sqlparser.Explain:
		// Explaining a statement requires the same permissions as
		// running it (ANALYZE does run it).
		return e.checkAccess(sender, s.Stmt)
	case *sqlparser.Trace, *sqlparser.GetBlock:
		// Tracking and block lookups span all tables; restrict to
		// participants that can read everything they touch. Tables in
		// private channels are filtered implicitly because their rows
		// only reach nodes of that channel; node-local enforcement stays
		// at the statement level here.
		return nil
	case *sqlparser.ShowTraces:
		// Node-local introspection over the flight recorder; no table
		// data is exposed beyond what the recorded statements returned.
		return nil
	default:
		return nil
	}
}

// DeployContract validates a smart contract and submits its deployment
// transaction, registering it locally at once (like DDL, deployment is
// visible immediately on the deploying node and replays everywhere
// else when the block propagates). A failed submit rolls the local
// registration back — unless the block actually committed and only the
// fsync failed, in which case the contract is chain state and stays.
func (e *Engine) DeployContract(sender, name string, statements []string) error {
	c, err := contract.Parse(name, statements)
	if err != nil {
		return err
	}
	if err := e.contracts.Register(c); err != nil {
		return err
	}
	e.publishView()
	tx := &types.Transaction{
		Ts:    e.nowMicro(),
		SenID: sender,
		Tname: contract.MetaTable,
		Args:  c.EncodeDeploy(),
	}
	e.signFor(tx, sender)
	if err := e.Submit(tx); err != nil {
		if !e.txCommitted(tx) {
			e.contracts.Unregister(c.Name)
			e.publishView()
			e.log.Warn("contract deploy rolled back", "contract", c.Name, "err", err)
		}
		return err
	}
	e.log.Info("contract deployed", "contract", c.Name, "sender", sender)
	return nil
}

// Contracts returns the node's deployed-contract registry.
func (e *Engine) Contracts() *contract.Registry { return e.contracts }

// InvokeContract runs a deployed contract as sender; each embedded
// statement goes through the normal SQL path including access control.
func (e *Engine) InvokeContract(sender, name string, args ...types.Value) (*Result, error) {
	res, err := e.contracts.Invoke(func(s, sql string) ([]string, [][]types.Value, error) {
		r, err := e.ExecuteAs(s, sql)
		if err != nil {
			return nil, nil, err
		}
		return r.Columns, r.Rows, nil
	}, sender, name, args...)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows}, nil
}
