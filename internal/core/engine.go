// Package core implements the SEBDB engine — the paper's primary
// contribution: a blockchain whose transactions are relational tuples,
// queried through a SQL-like language, stored once in append-only block
// files, and accelerated by the block-level, table-level and layered
// indexes of §IV-B. The engine is the per-node database; consensus
// (internal/consensus) decides the order of transactions and calls
// CommitBlock, while standalone users can let the engine package blocks
// itself via Submit/Flush.
package core

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"sebdb/internal/accessctl"
	"sebdb/internal/auth"
	"sebdb/internal/cache"
	"sebdb/internal/clock"
	"sebdb/internal/contract"
	"sebdb/internal/faultfs"
	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/blockindex"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/merkle"
	"sebdb/internal/obs"
	"sebdb/internal/parallel"
	"sebdb/internal/rdbms"
	"sebdb/internal/schema"
	"sebdb/internal/snapshot"
	"sebdb/internal/storage"
	"sebdb/internal/types"
)

// CacheMode selects which derived cache the engine maintains (§VII-H).
type CacheMode int

const (
	// CacheNone disables caching; every read hits the block files.
	CacheNone CacheMode = iota
	// CacheBlocks caches recently read whole blocks.
	CacheBlocks
	// CacheTxs caches recently read individual transactions.
	CacheTxs
)

// Config configures an engine instance.
type Config struct {
	// Dir is the storage directory for block segment files.
	Dir string
	// SegmentSize overrides the 256 MB default block-file size.
	SegmentSize int64
	// BlockMaxTxs caps the number of transactions packaged per block.
	// Zero means 200 (the paper's write-benchmark setting).
	BlockMaxTxs int
	// CacheMode selects the cache policy; CacheBytes its capacity
	// (default 2 GB, the paper's §VII-H setting). CacheShards stripes
	// the cache over independently locked shards (rounded up to a power
	// of two; zero means cache.DefaultShards) so view reads on
	// different keys stop contending on one mutex.
	CacheMode   CacheMode
	CacheBytes  int64
	CacheShards int
	// Mmap serves sealed (read-only) segments from memory maps where
	// the platform supports it; the active tail segment and any failed
	// map fall back to positional reads. See storage.Options.Mmap.
	Mmap bool
	// CompressAfter enables the background recompression pass: sealed
	// segments at least CompressAfter segments behind the active tail
	// are rewritten with per-record compression. Zero disables the
	// pass; CompressSealed still works for explicit sweeps.
	CompressAfter int
	// MaxOpenSegments bounds the store's per-segment read handles
	// (descriptors or mappings). Zero means
	// storage.DefaultMaxOpenSegments.
	MaxOpenSegments int
	// HistogramDepth is the first-level equal-depth histogram height for
	// continuous layered indexes (default 100, §VII-D).
	HistogramDepth int
	// MBTreeFanout is the ALI page fanout (default mbtree.DefaultFanout).
	MBTreeFanout int
	// Parallelism bounds the worker pool of both the read pipeline
	// (parallel scans, chain replay on Open, index backfill) and the
	// commit pipeline (transaction sealing and Merkle hashing in the
	// prepare stage, per-index fan-out in the index stage). Zero means
	// GOMAXPROCS; 1 makes every pipeline sequential.
	Parallelism int
	// Sync makes the block store fsync appended segments before a commit
	// reports success. Batched commits — FlushAt and consensus batches —
	// are covered by one group fsync per batch rather than one per
	// block; see storage.Store.SyncBatch. Default off: consensus
	// replication is the usual durability story.
	Sync bool
	// Signer names this node as block packager; Key signs headers.
	Signer string
	Key    ed25519.PrivateKey
	// DefaultSender is the SenID used by Execute when no session sender
	// is given.
	DefaultSender string
	// Clock supplies transaction and block timestamps (Unix micros).
	// Nil means the wall clock; tests inject clock.Fixed for
	// deterministic timing.
	Clock clock.Source
	// Obs is the metrics registry the engine and its operators report
	// into. Nil means obs.Default (what the server's /metrics exposes).
	Obs *obs.Registry
	// Recorder is the statement flight recorder: every Execute runs
	// under a sampled trace and slow statements are captured with their
	// span trees (see internal/obs). Nil disables recording — the
	// statement path then pays one nil check.
	Recorder *obs.Recorder
	// Log is the structured event logger the engine reports lifecycle
	// events into (DDL, rollbacks, checkpoints, commits at debug). Nil
	// disables event logging; every call is then a no-op.
	Log *obs.Logger
	// CheckpointInterval writes a derived-state checkpoint every that
	// many blocks (see internal/snapshot). Zero disables automatic
	// checkpointing; WriteCheckpoint still works.
	CheckpointInterval int
	// DisableCheckpointLoad makes Open ignore any existing checkpoint
	// and rebuild by full chain replay — the comparison baseline for
	// recovery benchmarks and crash-equivalence tests.
	DisableCheckpointLoad bool
	// FS injects the filesystem the store and checkpoint directory use.
	// Nil means the real one; tests inject faultfs.Injector to exercise
	// crash-restart behaviour.
	FS faultfs.FS
}

func (c *Config) fill() {
	if c.BlockMaxTxs == 0 {
		c.BlockMaxTxs = 200
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 2 << 30
	}
	if c.HistogramDepth == 0 {
		c.HistogramDepth = 100
	}
	if c.Parallelism == 0 {
		c.Parallelism = parallel.Default()
	}
	if c.Signer == "" {
		c.Signer = "node0"
	}
	if c.Key == nil {
		c.Key = ed25519.NewKeyFromSeed(make([]byte, ed25519.SeedSize))
	}
	if c.DefaultSender == "" {
		c.DefaultSender = c.Signer
	}
	if c.Clock == nil {
		c.Clock = clock.UnixMicro
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
}

// indexSpec remembers a user-created layered index so it can be
// maintained on append.
type indexSpec struct {
	table string // "" for the global system indexes
	col   string
}

func (s indexSpec) key() string { return s.table + "." + s.col }

// Engine is one node's SEBDB instance.
type Engine struct {
	cfg     Config
	store   *storage.Store
	catalog *schema.Catalog
	offDB   *rdbms.DB

	// blockIdx and tableIdx are created once in Open and carry their own
	// internal locks, so readers reach them without taking e.mu.
	blockIdx *blockindex.Index
	tableIdx *bitmap.TableIndex // keys: table names and "senid:<id>"

	// par is the worker bound of the read and commit pipelines
	// (Config.Parallelism), atomic so SetParallelism can retune it while
	// queries and commits run.
	par atomic.Int32

	// commitMu serialises writers through the staged commit pipeline:
	// the prepare stage (Tid assignment against the cursor, parallel
	// transaction sealing and Merkle hashing, header signing, and
	// foreign-block validation) runs under commitMu alone, so readers —
	// which take only e.mu — never wait behind hashing. The short
	// commit+index stages then take e.mu; the group fsync runs after it
	// is released again. Lock order: commitMu before e.mu, never the
	// reverse.
	commitMu sync.Mutex

	mu      sync.RWMutex // guards the index maps and the write path
	lidx    map[string]*layered.Index
	alis    map[string]*auth.ALI
	lastTid uint64
	lastTs  int64

	// snapDir is the checkpoint directory; ckptErr (guarded by e.mu) the
	// outcome of the last automatic checkpoint; recovery the finished
	// Open span tree, written once before the engine is shared.
	snapDir  *snapshot.Dir
	ckptErr  error
	recovery *obs.Span

	// ckptMu serialises checkpoint persists (which run outside e.mu so
	// commits and reads are never stalled behind the fsync) and guards
	// ckptFloor, the height of the newest persisted checkpoint.
	ckptMu    sync.Mutex
	ckptFloor uint64

	mempool   []*types.Transaction
	acl       *accessctl.Controller
	contracts *contract.Registry

	// log is the engine's component logger (Config.Log tagged "core");
	// nil — and therefore a no-op — when event logging is off.
	log *obs.Logger

	// keyMu guards the sender signing keys on their own lock: signing a
	// transaction happens on read paths' write cousins (execCreate,
	// DeployContract, NewTransaction) and must never touch e.mu.
	keyMu sync.RWMutex
	keys  map[string]ed25519.PrivateKey

	blockCache *cache.Sharded
	txCache    *cache.Sharded

	// compactStop/compactDone manage the background recompression
	// goroutine (see compact.go); nil when Config.CompressAfter is 0.
	compactStop chan struct{}
	compactDone chan struct{}

	// view is the published height-pinned read snapshot (see view.go);
	// readers Load it, the commit pipeline Stores a replacement at the
	// end of each index window. viewEpoch numbers the publishes.
	view      atomic.Pointer[View]
	viewEpoch atomic.Uint64

	// follower, when set, makes the local write entry points (Submit,
	// Flush/FlushAt, CommitBlock) fail with ErrFollower: a follower's
	// chain advances only through ApplyBlock on leader-pushed blocks, so
	// a locally minted block would fork it away from the leader.
	follower atomic.Bool

	// heightMu guards heightCh, a broadcast channel closed-and-replaced
	// every time a new view publishes. HeightSignal hands the current
	// channel to tailers (the replica subscription service) that wait
	// for the chain to advance without polling.
	heightMu sync.Mutex
	heightCh chan struct{}

	// mPrepare, mAppend and mIndex time the commit pipeline's three
	// stages into sebdb_stage_micros (stages commit.prepare,
	// commit.append, commit.index), resolved once at construction so the
	// hot path never takes the registry lock. mViewSwap and gViewEpoch
	// track the view publish cost and the running epoch.
	mPrepare, mAppend, mIndex *obs.Histogram
	mViewSwap                 *obs.Histogram
	gViewEpoch                *obs.Gauge
}

// Open opens (creating if needed) an engine over cfg.Dir and rebuilds
// catalog and system indexes — from the newest valid checkpoint plus a
// suffix replay when one exists, by full chain replay otherwise. The
// recovery is traced; ExplainRecovery reports where the time went.
func Open(cfg Config) (*Engine, error) {
	cfg.fill()
	tctx, root := obs.NewTrace(context.Background(), cfg.Obs, "recovery")
	e, err := openTraced(tctx, cfg)
	root.Finish()
	if err != nil {
		return nil, err
	}
	e.recovery = root
	e.log.Info("engine opened",
		"dir", cfg.Dir, "height", e.Height(), "recovery_micros", root.DurationMicros())
	if cfg.CompressAfter > 0 {
		e.startCompactor()
	}
	return e, nil
}

func openTraced(ctx context.Context, cfg Config) (*Engine, error) {
	snapDir := snapshot.NewDir(cfg.FS, cfg.Dir)
	sopts := storage.Options{SegmentSize: cfg.SegmentSize, Sync: cfg.Sync, FS: cfg.FS,
		Mmap: cfg.Mmap, MaxOpenSegments: cfg.MaxOpenSegments,
		Log: cfg.Log.With("storage")}

	// Phase 1: checkpoint. Load the pinned checkpoint, verify its anchor
	// against the segment store by fast-opening with the embedded
	// metadata, and seed the derived state from it. Every failure mode
	// drops back to full replay — never wrong answers, only slower ones.
	_, ckSpan := obs.StartSpan(ctx, "recovery.checkpoint")
	var ck *snapshot.Checkpoint
	if !cfg.DisableCheckpointLoad {
		c, err := snapDir.Load()
		if err != nil {
			ckSpan.Finish()
			return nil, err
		}
		ck = c
	}
	var st *storage.Store
	if ck != nil {
		s, err := storage.OpenWithMeta(cfg.Dir, sopts, ck.Store)
		switch {
		case err == nil:
			st = s
		case errors.Is(err, storage.ErrMetaMismatch):
			// Stale or tampered: the checkpoint does not describe the
			// chain on disk. Discard it.
			cfg.Obs.Counter("sebdb_snapshot_anchor_mismatch_total").Inc()
			ck = nil
		default:
			ckSpan.Finish()
			return nil, err
		}
	}
	if st == nil {
		s, err := storage.Open(cfg.Dir, sopts)
		if err != nil {
			ckSpan.Finish()
			return nil, err
		}
		st = s
	}
	e := newEngine(cfg, st, snapDir)
	var base uint64
	if ck != nil {
		if err := e.restoreCheckpoint(ck); err != nil {
			// The checkpoint decoded but disagrees with itself; rebuild
			// everything from the chain instead.
			cfg.Obs.Counter("sebdb_snapshot_restore_errors_total").Inc()
			if cerr := st.Close(); cerr != nil {
				ckSpan.Finish()
				return nil, cerr
			}
			st, err = storage.Open(cfg.Dir, sopts)
			if err != nil {
				ckSpan.Finish()
				return nil, err
			}
			e = newEngine(cfg, st, snapDir)
		} else {
			base = ck.Height
		}
	}
	ckSpan.Finish()

	// Phase 2: replay the remaining suffix (the whole chain when no
	// checkpoint seeded state): catalog, indexes and counters. Blocks are
	// decoded ahead by the worker pool; indexing itself stays on this
	// goroutine in height order (Tids, bitmaps and layered appends all
	// assume blocks arrive in order).
	_, repSpan := obs.StartSpan(ctx, "recovery.replay")
	defer repSpan.Finish()
	n := uint64(st.Count())
	if n > base {
		it, err := st.Blocks(base, n)
		if err != nil {
			return nil, err
		}
		err = parallel.Ordered(e.Parallelism(), int(n-base),
			func(i int) (*types.Block, error) { return it.Read(base + uint64(i)) },
			func(_ int, b *types.Block) error { return e.indexBlock(b) })
		it.Close()
		if err != nil {
			return nil, err
		}
	}
	cfg.Obs.Counter("sebdb_snapshot_suffix_blocks").Add(n - base)
	repSpan.AddCounter("suffix_blocks", int64(n-base))
	// Replay persisted user index definitions (indexes the checkpoint
	// already restored are kept; ones created after it backfill from the
	// chain).
	if err := e.loadIndexMeta(); err != nil {
		return nil, err
	}
	// Publish the recovered state as the first real view: replay does not
	// publish per block (nobody can read mid-recovery), so this is where
	// readers first see the chain.
	e.publishView()
	return e, nil
}

// newEngine builds the in-memory engine shell over an opened store.
func newEngine(cfg Config, st *storage.Store, snapDir *snapshot.Dir) *Engine {
	e := &Engine{
		cfg:        cfg,
		store:      st,
		catalog:    schema.NewCatalog(),
		offDB:      rdbms.New(),
		blockIdx:   blockindex.New(),
		tableIdx:   bitmap.NewTableIndex(),
		lidx:       make(map[string]*layered.Index),
		alis:       make(map[string]*auth.ALI),
		keys:       make(map[string]ed25519.PrivateKey),
		acl:        accessctl.New(),
		contracts:  contract.NewRegistry(),
		log:        cfg.Log.With("core"),
		snapDir:    snapDir,
		mPrepare:   cfg.Obs.Histogram(`sebdb_stage_micros{stage="commit.prepare"}`),
		mAppend:    cfg.Obs.Histogram(`sebdb_stage_micros{stage="commit.append"}`),
		mIndex:     cfg.Obs.Histogram(`sebdb_stage_micros{stage="commit.index"}`),
		mViewSwap:  cfg.Obs.Histogram("sebdb_view_swap_micros"),
		gViewEpoch: cfg.Obs.Gauge("sebdb_view_epoch"),
	}
	e.par.Store(int32(cfg.Parallelism))
	switch cfg.CacheMode {
	case CacheBlocks:
		e.blockCache = cache.NewSharded(cfg.CacheBytes, cfg.CacheShards)
	case CacheTxs:
		e.txCache = cache.NewSharded(cfg.CacheBytes, cfg.CacheShards)
	}
	// The global track-trace indexes on the system columns are always
	// present (§V-A: "the layered indices on column SenID and Tname are
	// pre-created ... on all tables for all historical transactions").
	// A checkpoint restore replaces them with the serialised state.
	e.lidx[".senid"] = layered.NewDiscrete("senid")
	e.lidx[".tname"] = layered.NewDiscrete("tname")
	e.heightCh = make(chan struct{})
	// Install an empty view so CurrentView never returns nil; the real
	// one is published once recovery has rebuilt the derived state. The
	// shell is not shared yet, so no lock is needed.
	e.view.Store(e.buildView(0))
	return e
}

// RecoveryTrace returns the finished span tree of the last Open: a
// "recovery" root with "recovery.checkpoint" (checkpoint load, anchor
// verification, state restore) and "recovery.replay" (suffix replay and
// index-definition reload) children. Their durations also feed the
// sebdb_stage_micros metrics.
func (e *Engine) RecoveryTrace() *obs.Span { return e.recovery }

// ExplainRecovery renders the recovery trace the way EXPLAIN ANALYZE
// renders a query trace: one row per stage with its wall time, so
// checkpoint-load vs suffix-replay cost is inspectable.
func (e *Engine) ExplainRecovery() *Result {
	if e.recovery == nil {
		return &Result{Columns: []string{"stage", "micros", "blocks_read",
			"txs_examined", "index_probes", "detail"}}
	}
	return renderTrace(e.recovery)
}

// Close stops the background compactor (if running) and releases the
// engine's resources.
func (e *Engine) Close() error {
	e.stopCompactor()
	return e.store.Close()
}

// OffChain returns the node-local off-chain RDBMS.
func (e *Engine) OffChain() *rdbms.DB { return e.offDB }

// AccessControl returns the node's channel/permission configuration
// (paper §III-B's application-layer access control). A fresh engine
// permits everything (all tables in the public channel).
func (e *Engine) AccessControl() *accessctl.Controller { return e.acl }

// Catalog returns the schema catalog.
func (e *Engine) Catalog() *schema.Catalog { return e.catalog }

// Height returns the chain height (number of blocks).
func (e *Engine) Height() uint64 { return uint64(e.store.Count()) }

// Recorder returns the engine's statement flight recorder (nil when
// tracing is off); callers that run queries below the SQL layer can
// record statements against it directly.
func (e *Engine) Recorder() *obs.Recorder { return e.cfg.Recorder }

// Parallelism returns the read and commit pipelines' worker bound
// (>= 1); the engine satisfies exec.ParallelChain with it.
func (e *Engine) Parallelism() int {
	if n := int(e.par.Load()); n > 1 {
		return n
	}
	return 1
}

// SetParallelism retunes the worker bound at runtime; values below 1
// make reads sequential. The benchmark harness uses it to sweep the
// worker axis over one loaded chain.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.par.Store(int32(n))
}

// Headers returns all block headers (what a thin client syncs).
func (e *Engine) Headers() []types.BlockHeader { return e.store.Headers() }

// nowMicro returns the engine clock's current time in Unix
// microseconds.
func (e *Engine) nowMicro() int64 { return e.cfg.Clock() }

// Obs returns the engine's metrics registry; the engine satisfies
// exec.ObsChain with it, so the operators report into the same
// registry the server exposes.
func (e *Engine) Obs() *obs.Registry { return e.cfg.Obs }

// EventLog returns the engine's base event logger (Config.Log, untagged;
// possibly nil — obs.Logger is nil-safe). Subsystems layered over the
// engine (node, replica) derive their component loggers from it.
func (e *Engine) EventLog() *obs.Logger { return e.cfg.Log }

// RegisterKey associates a sender identity with a signing key; Submit
// and Execute sign transactions from that sender.
func (e *Engine) RegisterKey(sender string, key ed25519.PrivateKey) {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	e.keys[sender] = key
}

// signFor signs tx with sender's registered key, if any. It is the one
// signing block shared by NewTransaction, execCreate and
// DeployContract; it takes only keyMu, never e.mu.
func (e *Engine) signFor(tx *types.Transaction, sender string) {
	e.keyMu.RLock()
	key, ok := e.keys[sender]
	e.keyMu.RUnlock()
	if ok {
		tx.Sign(key)
	}
}

// txCommitted reports whether tx landed on the chain: a committed
// transaction has a Tid assigned at or below the commit cursor. The DDL
// rollback paths use it to distinguish an append failure (tx never
// committed — roll the local registration back) from a sync failure
// after the commit (tx is chain state — keep the registration).
func (e *Engine) txCommitted(tx *types.Transaction) bool {
	if tx.Tid == 0 {
		return false
	}
	e.mu.RLock()
	last := e.lastTid
	e.mu.RUnlock()
	return tx.Tid <= last
}

// NewTransaction builds (and signs, when the sender has a registered
// key) a transaction for the given table, validating the args against
// the schema. The Tid is assigned at commit time.
func (e *Engine) NewTransaction(sender, tname string, args []types.Value) (*types.Transaction, error) {
	tbl, err := e.catalog.Lookup(tname)
	if err != nil {
		return nil, err
	}
	vals, err := tbl.ValidateArgs(args)
	if err != nil {
		return nil, err
	}
	tx := &types.Transaction{
		Ts:    e.nowMicro(),
		SenID: sender,
		Tname: tbl.Name,
		Args:  vals,
	}
	e.signFor(tx, sender)
	return tx, nil
}

// ErrFollower rejects local write entry points on an engine running in
// follower mode; its chain advances only through ApplyBlock.
var ErrFollower = errors.New("core: engine is a follower; writes go to the leader")

// SetFollower switches the engine's follower mode. A follower rejects
// Submit/Flush/CommitBlock with ErrFollower so it can never mint a block
// that forks it away from its leader; ApplyBlock (replicated, verified
// blocks) stays open, as do all reads.
func (e *Engine) SetFollower(on bool) { e.follower.Store(on) }

// IsFollower reports whether the engine is in follower mode.
func (e *Engine) IsFollower() bool { return e.follower.Load() }

// HeightSignal returns a channel closed the next time a new view
// publishes (commit, apply, DDL, index creation). Waiters select on it,
// then call Height/CurrentView and re-arm by calling HeightSignal again.
// Because the channel is replaced on every publish, a waiter must
// re-check the height after grabbing the channel to close the
// check-then-wait race.
func (e *Engine) HeightSignal() <-chan struct{} {
	e.heightMu.Lock()
	ch := e.heightCh
	e.heightMu.Unlock()
	return ch
}

// bumpHeightSignal wakes every HeightSignal waiter. Called with e.mu
// held (from publishViewLocked); heightMu nests inside e.mu and is never
// held across anything blocking.
func (e *Engine) bumpHeightSignal() {
	e.heightMu.Lock()
	close(e.heightCh)
	e.heightCh = make(chan struct{})
	e.heightMu.Unlock()
}

// Submit appends a transaction to the standalone mempool, packaging a
// block when BlockMaxTxs accumulate. Consensus-driven deployments skip
// Submit and deliver ordered batches through CommitBlock instead.
func (e *Engine) Submit(tx *types.Transaction) error {
	if e.follower.Load() {
		return ErrFollower
	}
	e.mu.Lock()
	e.mempool = append(e.mempool, tx)
	full := len(e.mempool) >= e.cfg.BlockMaxTxs
	e.mu.Unlock()
	if full {
		return e.Flush()
	}
	return nil
}

// Flush packages all pending mempool transactions, stamping blocks with
// the current time.
func (e *Engine) Flush() error { return e.FlushAt(e.nowMicro()) }

// FlushAt packages all pending mempool transactions into blocks stamped
// with the given timestamp (clamped to stay monotonic). Deterministic
// loaders — the benchmark's data generator — use it to control the
// chain's time axis.
func (e *Engine) FlushAt(ts int64) error {
	if e.follower.Load() {
		return ErrFollower
	}
	e.mu.Lock()
	pending := e.mempool
	e.mempool = nil
	e.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	// All blocks of one flush run through the pipeline back to back with
	// the per-block fsync deferred; a single group fsync at the end makes
	// the whole batch durable (see syncCommitted for why a crash in
	// between cannot corrupt the chain).
	e.commitMu.Lock()
	var ck *snapshot.Checkpoint
	var err error
	for len(pending) > 0 && err == nil {
		n := len(pending)
		if n > e.cfg.BlockMaxTxs {
			n = e.cfg.BlockMaxTxs
		}
		var c *snapshot.Checkpoint
		//sebdb:ignore-lockio reason: commitMu is the writer-pipeline lock; it exists to serialise the append+fsync pipeline, and readers never take it
		_, c, err = e.commitOne(pending[:n], ts, false)
		if c != nil {
			ck = c
		}
		pending = pending[n:]
	}
	//sebdb:ignore-lockio reason: the batch group fsync runs under commitMu by design — writers queue behind durability, readers never take commitMu
	if serr := e.syncCommitted(); err == nil {
		err = serr
	}
	e.commitMu.Unlock()
	e.finishCheckpoint(ck)
	return err
}

// CommitBlock packages the ordered transactions into the next block,
// appends it durably and updates every index. It assigns Tids in order
// and is the single entry point consensus uses to apply a decided batch.
//
// The commit is a staged pipeline. The prepare stage — timestamp clamp,
// Tid assignment, sealing and Merkle-hashing every transaction with the
// worker pool, header chain and signature — runs under commitMu only,
// so concurrent readers are never stalled behind hashing. The commit
// and index stages take e.mu for the segment append and the fanned-out
// index maintenance. When the commit lands on a checkpoint-interval
// boundary the state is snapshotted under the lock, but the
// checkpoint's encode and fsync+rename happen after every lock is
// released, so neither reads nor the next commit stall behind
// checkpoint I/O.
func (e *Engine) CommitBlock(txs []*types.Transaction, ts int64) (*types.Block, error) {
	if e.follower.Load() {
		return nil, ErrFollower
	}
	e.commitMu.Lock()
	//sebdb:ignore-lockio reason: commitMu serialises the writer pipeline including the block fsync; readers never take it, and checkpoint I/O is outside it
	b, ck, err := e.commitOne(txs, ts, true)
	e.commitMu.Unlock()
	if err != nil {
		return nil, err
	}
	e.finishCheckpoint(ck)
	return b, nil
}

// commitOne runs one block through the pipeline. Callers hold commitMu.
// syncNow makes the block durable before returning; batch callers pass
// false and issue one group fsync for the whole batch instead.
func (e *Engine) commitOne(txs []*types.Transaction, ts int64, syncNow bool) (*types.Block, *snapshot.Checkpoint, error) {
	start := e.cfg.Obs.Now()
	b := e.prepareBlock(txs, ts)
	prepared := e.cfg.Obs.Now()
	e.mPrepare.Observe(prepared - start)

	e.mu.Lock()
	//sebdb:ignore-lockio reason: AppendNoSync is a buffered segment append — it fsyncs only on segment roll, an audited rarity; the per-block fsync is outside e.mu
	if _, err := e.store.AppendNoSync(b); err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	appended := e.cfg.Obs.Now()
	if err := e.indexBlockLocked(b); err != nil {
		e.mu.Unlock()
		return nil, nil, err
	}
	ck := e.maybeBuildCheckpointLocked()
	e.publishViewLocked()
	e.mu.Unlock()
	e.mAppend.Observe(appended - prepared)
	e.mIndex.Observe(e.cfg.Obs.Now() - appended)
	e.log.Debug("block committed",
		"height", b.Header.Height, "txs", len(b.Txs), "first_tid", b.Header.FirstTid)

	if syncNow {
		if err := e.syncCommitted(); err != nil {
			return nil, ck, err
		}
	}
	return b, ck, nil
}

// prepareBlock is the pipeline's lock-free stage: it stamps the batch
// against the commit cursor, seals and leaf-hashes every transaction
// with the worker pool, reduces the Merkle root in parallel, and builds
// the signed header. Callers hold commitMu, which makes the cursor read
// stable — commitMu holders are the only writers of lastTid/lastTs and
// the tip — while e.mu is held only for the brief cursor read.
func (e *Engine) prepareBlock(txs []*types.Transaction, ts int64) *types.Block {
	e.mu.RLock()
	lastTid, lastTs := e.lastTid, e.lastTs
	e.mu.RUnlock()
	// Monotonic block timestamps keep the block-level index's time
	// lookups well-defined.
	if ts <= lastTs {
		ts = lastTs + 1
	}
	for i, tx := range txs {
		tx.Tid = lastTid + uint64(i) + 1
	}
	workers := e.Parallelism()
	leaves := types.TxLeavesWorkers(txs, workers)
	root := merkle.RootWorkers(leaves, workers)
	var prev *types.BlockHeader
	if tip, ok := e.store.Tip(); ok {
		prev = &tip
	}
	b := types.NewBlockFromRoot(prev, txs, root, ts, e.cfg.Signer)
	b.Header.Sign(e.cfg.Key)
	return b
}

// syncCommitted is the pipeline's group fsync, covering every block
// appended with AppendNoSync since the last one. It runs outside e.mu
// (readers proceed; commitMu still serialises writers), which is safe
// because a crash before the fsync can only lose an unsynced suffix of
// appended blocks — recovery's torn-tail truncate restores the last
// durable prefix, never a chain with a gap. A sync failure is reported
// to the committer; the blocks stay applied in memory, since they are
// valid chain state that consensus has already replicated.
func (e *Engine) syncCommitted() error {
	if !e.cfg.Sync {
		return nil
	}
	return e.store.SyncBatch()
}

// ApplyBlock validates and appends a block produced elsewhere (received
// via consensus/gossip), then indexes it. It runs the same staged
// pipeline as CommitBlock with validation — the foreign-block
// equivalent of prepare — fanned out off the engine lock; any due
// checkpoint is built under the lock and persisted outside it.
func (e *Engine) ApplyBlock(b *types.Block) error {
	e.commitMu.Lock()
	//sebdb:ignore-lockio reason: commitMu serialises the foreign-block pipeline including its fsync; readers never take it
	ck, err := e.applyOne(b)
	e.commitMu.Unlock()
	if err != nil {
		return err
	}
	e.finishCheckpoint(ck)
	return nil
}

// applyOne runs a foreign block through the pipeline. Callers hold
// commitMu.
func (e *Engine) applyOne(b *types.Block) (*snapshot.Checkpoint, error) {
	start := e.cfg.Obs.Now()
	if err := b.ValidateWorkers(e.Parallelism()); err != nil {
		return nil, err
	}
	prepared := e.cfg.Obs.Now()
	e.mPrepare.Observe(prepared - start)

	e.mu.Lock()
	//sebdb:ignore-lockio reason: AppendNoSync is a buffered segment append — it fsyncs only on segment roll, an audited rarity; the per-block fsync is outside e.mu
	if _, err := e.store.AppendNoSync(b); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	appended := e.cfg.Obs.Now()
	if err := e.indexBlockLocked(b); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	ck := e.maybeBuildCheckpointLocked()
	e.publishViewLocked()
	e.mu.Unlock()
	e.mAppend.Observe(appended - prepared)
	e.mIndex.Observe(e.cfg.Obs.Now() - appended)
	e.log.Debug("block applied",
		"height", b.Header.Height, "txs", len(b.Txs), "signer", b.Header.Signer)
	return ck, e.syncCommitted()
}

// indexBlock locks and indexes (used during replay).
func (e *Engine) indexBlock(b *types.Block) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.indexBlockLocked(b)
}

// indexBlockLocked updates catalog, counters and all indexes for a
// newly appended block. Callers hold e.mu.
func (e *Engine) indexBlockLocked(b *types.Block) error {
	bid := b.Header.Height
	for _, tx := range b.Txs {
		if err := e.catalog.ApplyTx(tx); err != nil {
			return err
		}
		if err := e.contracts.ApplyTx(tx.Tname, tx.Args); err != nil {
			return err
		}
		if tx.Tid > e.lastTid {
			e.lastTid = tx.Tid
		}
	}
	if b.Header.Timestamp > e.lastTs {
		e.lastTs = b.Header.Timestamp
	}

	lastTid := b.Header.FirstTid
	if n := len(b.Txs); n > 0 {
		lastTid = b.Txs[n-1].Tid
	}
	e.blockIdx.Append(bid, b.Header.FirstTid, lastTid, b.Header.Timestamp)

	// Table-level bitmaps on Tname and SenID.
	for _, tx := range b.Txs {
		e.tableIdx.Mark(tx.Tname, int(bid))
		e.tableIdx.Mark("senid:"+tx.SenID, int(bid))
	}

	// Layered indexes and ALIs: the global system ones plus any user
	// indexes. Each index is self-contained, so the per-index extract +
	// append work fans out to the worker pool; the join happens before
	// e.mu is released, so readers never see a block half-indexed and
	// crash/replay fingerprints are identical to the serial walk. Keys
	// are sorted so a failure is always reported for the same index
	// regardless of scheduling.
	tasks := make([]func() error, 0, len(e.lidx)+len(e.alis))
	for _, key := range sortedKeys(e.lidx) {
		idx := e.lidx[key]
		tasks = append(tasks, func() error {
			entries, err := e.entriesFor(key, b)
			if err != nil {
				return err
			}
			idx.AppendBlock(bid, entries)
			return nil
		})
	}
	for _, key := range sortedKeys(e.alis) {
		ali := e.alis[key]
		tasks = append(tasks, func() error {
			recs, err := e.recordsFor(key, b)
			if err != nil {
				return err
			}
			ali.AppendBlock(bid, recs)
			return nil
		})
	}
	return parallel.Ordered(e.Parallelism(), len(tasks),
		func(i int) (struct{}, error) { return struct{}{}, tasks[i]() },
		func(int, struct{}) error { return nil })
}

// entriesFor extracts the layered-index entries of one block for the
// index identified by key ("table.col" or ".senid"/".tname").
func (e *Engine) entriesFor(key string, b *types.Block) ([]layered.Entry, error) {
	value := e.extractorFor(key)
	var out []layered.Entry
	for pos, tx := range b.Txs {
		v, ok, err := value(tx)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, layered.Entry{Key: v, Pos: uint32(pos)})
		}
	}
	return out, nil
}

// recordsFor extracts the ALI records of one block. Transactions sealed
// by the commit pipeline contribute their cached encoding as the
// payload — the same bytes an unsealed re-encode would produce.
func (e *Engine) recordsFor(key string, b *types.Block) ([]mbtree.Record, error) {
	value := e.extractorFor(key)
	var out []mbtree.Record
	for _, tx := range b.Txs {
		v, ok, err := value(tx)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, mbtree.Record{Key: v, Payload: tx.EncodeBytes()})
		}
	}
	return out, nil
}

// extractorFor resolves one index key's per-transaction value lookup
// once per block and returns the cheap per-transaction closure: the
// schema lookup and column-position resolution that used to repeat for
// every transaction of every index are hoisted out of the loop. The
// closure reports ok=false for transactions outside the indexed table.
// The schema resolves lazily on the first matching transaction, so
// blocks without the indexed table never consult the catalog. Each call
// returns a fresh closure, so extractors may run concurrently — one per
// index task of the commit pipeline's fan-out, or one per block of a
// backfill.
func (e *Engine) extractorFor(key string) func(tx *types.Transaction) (types.Value, bool, error) {
	spec := splitKey(key)
	if spec.table == "" {
		// Global system index: every transaction carries the value.
		return func(tx *types.Transaction) (types.Value, bool, error) {
			v, err := tx.SystemValue(spec.col)
			if err != nil {
				return types.Null, false, err
			}
			return v, true, nil
		}
	}
	col := strings.ToLower(spec.col)
	if _, err := types.SystemColumnKind(col); err == nil {
		// A table-scoped index on a system column needs no schema at all.
		return func(tx *types.Transaction) (types.Value, bool, error) {
			if tx.Tname != spec.table {
				return types.Null, false, nil
			}
			v, err := tx.SystemValue(col)
			if err != nil {
				return types.Null, false, err
			}
			return v, true, nil
		}
	}
	pos := -1
	return func(tx *types.Transaction) (types.Value, bool, error) {
		if tx.Tname != spec.table {
			return types.Null, false, nil
		}
		if pos < 0 {
			tbl, err := e.catalog.Lookup(spec.table)
			if err != nil {
				return types.Null, false, err
			}
			if pos = tbl.ColumnIndex(col); pos < 0 {
				return types.Null, false, fmt.Errorf("core: table %q has no column %q", spec.table, col)
			}
		}
		v, err := tx.Column(pos)
		if err != nil {
			return types.Null, false, err
		}
		return v, true, nil
	}
}

func splitKey(key string) indexSpec {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return indexSpec{table: key[:i], col: key[i+1:]}
		}
	}
	return indexSpec{col: key}
}
