package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"sebdb/internal/obs"
	"sebdb/internal/types"
)

// tickClock returns a clock.Source-compatible func that advances one
// microsecond per read, so every span gets a nonzero deterministic
// duration without wall time.
func tickClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }
}

func TestExplainAnalyzeSpanTree(t *testing.T) {
	clk := tickClock()
	reg := obs.NewRegistry(clk)
	e := testEngine(t, Config{Clock: clk, Obs: reg})
	seedDonation(t, e, 30, 10)

	res := mustExec(t, e, `EXPLAIN ANALYZE SELECT * FROM donate WHERE amount >= 0`)
	wantCols := []string{"stage", "micros", "blocks_read", "txs_examined", "index_probes", "detail"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("columns = %v", res.Columns)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
		}
	}

	stage := func(row []types.Value) string {
		return strings.TrimSpace(row[0].S)
	}
	micros := func(row []types.Value) int64 { return row[1].I }

	if got := stage(res.Rows[0]); got != "query" {
		t.Fatalf("first stage = %q, want query", got)
	}
	rootMicros := micros(res.Rows[0])
	if rootMicros <= 0 {
		t.Fatalf("root micros = %d, want > 0", rootMicros)
	}

	byStage := map[string][]types.Value{}
	var childSum int64
	for _, row := range res.Rows[1:] {
		byStage[stage(row)] = row
		if !strings.HasPrefix(row[0].S, "    ") {
			childSum += micros(row) // depth-1 stages only
		}
	}
	for _, want := range []string{"parse", "plan", "project"} {
		if _, ok := byStage[want]; !ok {
			t.Errorf("missing stage %q in %v", want, res.Rows)
		}
	}
	var execRow []types.Value
	for name, row := range byStage {
		if strings.HasPrefix(name, "exec.select.") {
			execRow = row
		}
	}
	if execRow == nil {
		t.Fatalf("no exec.select.* stage in %v", res.Rows)
	}
	if childSum > rootMicros {
		t.Errorf("child stages sum to %d micros > root %d", childSum, rootMicros)
	}

	// The exec stage's counters are the query's exec.Stats: the scan
	// read every one of the 4 blocks (1 DDL flush + 3 data flushes) it
	// touched and examined all 30 transactions.
	br := execRow[2].I
	te := execRow[3].I
	if br <= 0 || te != 30 {
		t.Errorf("exec counters blocks_read=%d txs_examined=%d, want >0 and 30", br, te)
	}

	// The same stats also accumulated as registry counters.
	var total uint64
	for _, m := range []string{"scan", "bitmap", "layered"} {
		total += reg.Counter(`sebdb_exec_txs_examined_total{op="select",method="` + m + `"}`).Value()
	}
	if total < 30 {
		t.Errorf("registry txs_examined = %d, want >= 30", total)
	}
}

func TestExplainAnalyzeRejectsWrites(t *testing.T) {
	e := testEngine(t, Config{})
	seedDonation(t, e, 5, 5)
	if _, err := e.Execute(`EXPLAIN ANALYZE CREATE other (a int)`); err == nil {
		t.Fatal("EXPLAIN ANALYZE of DDL should fail")
	}
	if _, err := e.Execute(`EXPLAIN SELECT * FROM donate`); err != nil {
		t.Fatalf("plain EXPLAIN: %v", err)
	}
}

func TestExplainAnalyzeNotNested(t *testing.T) {
	e := testEngine(t, Config{})
	seedDonation(t, e, 5, 5)
	if _, err := e.Execute(`EXPLAIN EXPLAIN SELECT * FROM donate`); err == nil {
		t.Fatal("nested EXPLAIN should fail to parse")
	}
}
