package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sebdb/internal/types"
)

// TestTierRaceCacheReadsVsCommits hammers the sharded block/tx caches
// from concurrent readers while the commit path keeps appending; under
// -race it checks the stripes are independently safe and that reads
// stay correct while the chain grows.
func TestTierRaceCacheReadsVsCommits(t *testing.T) {
	e := testEngine(t, Config{
		CacheMode:   CacheTxs,
		CacheBytes:  1 << 16, // small, so eviction churns during the race
		CacheShards: 4,
		BlockMaxTxs: 5,
	})
	seedDonation(t, e, 60, 5)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := e.NumBlocks()
				bid := uint64((g*13 + i) % n)
				b, err := e.Block(bid)
				if err != nil {
					t.Errorf("block %d: %v", bid, err)
					return
				}
				if len(b.Txs) > 0 {
					if _, err := e.Tx(bid, uint32(i%len(b.Txs))); err != nil {
						t.Errorf("tx %d/%d: %v", bid, i%len(b.Txs), err)
						return
					}
				}
			}
		}(g)
	}
	// Don't start (and finish) the commits before the readers have been
	// scheduled at all, or the final counter assertion races the runtime.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if s := e.CacheStats(); s.Hits+s.Misses > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readers never touched the cache")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		tx, err := e.NewTransaction("org1", "donate", []types.Value{
			types.Str(fmt.Sprintf("racer%03d", i)), types.Str("education"), types.Dec(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.CommitBlock([]*types.Transaction{tx}, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if stats := e.CacheStats(); stats.Hits+stats.Misses == 0 {
		t.Error("race run never touched the cache")
	}
	if shards := e.CacheShardStats(); len(shards) != 4 {
		t.Errorf("CacheShardStats returned %d stripes, want 4", len(shards))
	}
}

// TestBackgroundCompactor checks the CompressAfter goroutine really
// rewrites sealed segments behind the tail and that queries keep
// answering identically while and after it runs.
func TestBackgroundCompactor(t *testing.T) {
	e := testEngine(t, Config{
		SegmentSize:   2048,
		CompressAfter: 1,
		BlockMaxTxs:   5,
	})
	seedDonation(t, e, 80, 5)
	before := mustExec(t, e, `SELECT * FROM donate WHERE donor = "donor003"`)

	deadline := time.After(10 * time.Second)
	for {
		comp, err := e.store.Compressed(0)
		if err != nil {
			t.Fatal(err)
		}
		if comp {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background compactor never recompressed a segment")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if _, err := e.DiskBytes(); err != nil {
		t.Fatal(err)
	}
	after := mustExec(t, e, `SELECT * FROM donate WHERE donor = "donor003"`)
	if len(after.Rows) != len(before.Rows) {
		t.Errorf("rows changed across recompression: %d -> %d", len(before.Rows), len(after.Rows))
	}
}

// TestCheckpointStaleAfterCompression writes a checkpoint, then
// recompresses the chain underneath it: the restart must detect the
// stale block locations, fall back to full replay, and still answer
// identically — slower, never wrong.
func TestCheckpointStaleAfterCompression(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, Config{Dir: dir, SegmentSize: 2048, BlockMaxTxs: 5})
	seedDonation(t, e, 60, 5)
	if err := e.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Invalidate the checkpoint's segment geometry after the fact.
	if err := e.CompressSealed(1); err != nil {
		t.Fatal(err)
	}
	fpBefore := recoveryFingerprint(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re := testEngine(t, Config{Dir: dir, SegmentSize: 2048, BlockMaxTxs: 5})
	if got := recoveryFingerprint(t, re); got != fpBefore {
		t.Error("replay after a stale checkpoint diverged from the live engine")
	}
}

// TestCheckpointRoundTripCompressed checks the v2 checkpoint written
// AFTER recompression seeds a store over the mixed segments directly.
func TestCheckpointRoundTripCompressed(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, Config{Dir: dir, SegmentSize: 2048, BlockMaxTxs: 5})
	seedDonation(t, e, 60, 5)
	if err := e.CompressSealed(1); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	fpBefore := recoveryFingerprint(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re := testEngine(t, Config{Dir: dir, SegmentSize: 2048, BlockMaxTxs: 5, Mmap: true})
	if got := recoveryFingerprint(t, re); got != fpBefore {
		t.Error("checkpoint-seeded engine diverged over compressed segments")
	}
}
