package core

import (
	"context"
	"fmt"
	"strings"

	"sebdb/internal/auth"
	"sebdb/internal/contract"
	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/blockindex"
	"sebdb/internal/index/layered"
	"sebdb/internal/obs"
	"sebdb/internal/schema"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// View is an immutable, height-pinned snapshot of everything a read
// needs: catalog, contract registry, block/table/layered indexes, ALIs
// and the chain tip, all consistent with one height. The engine
// publishes a fresh view at the end of every commit's index window (and
// after DDL, contract deployment and index creation), swapping an
// atomic pointer; SELECT/TRACE/JOIN/EXPLAIN and thin-client VO
// generation run entirely against the view they pinned, so they perform
// zero e.mu acquisitions and never observe a block half-indexed.
//
// A view is cheap to build because nothing is deep-copied. The shared
// structures are safe under two different regimes:
//
//   - The catalog, contract registry and index maps are snapshotted as
//     map copies of immutable values (tables and contracts never mutate
//     after definition; the maps themselves are what DDL mutates).
//   - The block index, table bitmaps, layered indexes and ALIs are the
//     live objects. Each carries its own internal lock, and appends
//     only ever add state for blocks at or beyond the view's height, so
//     masking every answer to [0, height) — the pinned block index and
//     the view's bitmap mask do exactly that — reproduces the structure
//     as it was at publish time.
type View struct {
	e      *Engine
	epoch  uint64
	height uint64
	// lastTid/lastTs are the commit cursor at publish time; lastTid
	// bounds ByTid lookups inside the pinned prefix.
	lastTid uint64
	lastTs  int64
	// tip is the newest header inside the view, nil for an empty chain.
	tip *types.BlockHeader

	tables    map[string]*schema.Table
	contracts map[string]*contract.Contract
	lidx      map[string]*layered.Index
	alis      map[string]*auth.ALI

	bidx *blockindex.Pinned
	// mask has bits [0, height) set; live bitmap answers are
	// intersected with it. Shared read-only across the view's readers.
	mask *bitmap.Bitmap
}

// buildView assembles a view pinned to height h from the engine's
// current state. Callers hold e.mu exclusively (or own the engine
// outright during construction), which is what makes h, the cursor and
// the index maps mutually consistent.
func (e *Engine) buildView(h uint64) *View {
	v := &View{
		e:         e,
		epoch:     e.viewEpoch.Add(1),
		height:    h,
		lastTid:   e.lastTid,
		lastTs:    e.lastTs,
		tables:    e.catalog.Snapshot(),
		contracts: e.contracts.Snapshot(),
		lidx:      make(map[string]*layered.Index, len(e.lidx)),
		alis:      make(map[string]*auth.ALI, len(e.alis)),
		mask:      bitmap.Upto(int(h)),
	}
	if h > 0 {
		if tip, ok := e.store.Tip(); ok {
			v.tip = &tip
		}
	}
	for k, idx := range e.lidx {
		v.lidx[k] = idx
	}
	for k, ali := range e.alis {
		v.alis[k] = ali
	}
	v.bidx = blockindex.Pin(e.blockIdx, h, e.lastTid, v.mask)
	return v
}

// publishViewLocked swaps in a view of the engine's current state.
// Callers hold e.mu exclusively; the swap is the read side's only
// coupling to the write path, so its cost is tracked
// (sebdb_view_swap_micros) along with the running epoch
// (sebdb_view_epoch).
func (e *Engine) publishViewLocked() {
	start := e.cfg.Obs.Now()
	v := e.buildView(uint64(e.store.Count()))
	e.view.Store(v)
	e.bumpHeightSignal()
	e.gViewEpoch.Set(int64(v.epoch))
	e.mViewSwap.Observe(e.cfg.Obs.Now() - start)
}

// publishView takes the engine lock briefly to publish a fresh view.
// The DDL paths use it: a locally registered table or contract must be
// visible to readers before the submit returns.
func (e *Engine) publishView() {
	e.mu.Lock()
	e.publishViewLocked()
	e.mu.Unlock()
}

// CurrentView returns the newest published view. It never returns nil:
// a zero-height view is installed at construction, and every commit,
// DDL and index creation republishes.
func (e *Engine) CurrentView() *View { return e.view.Load() }

// pinView pins the current view for one statement, recording the pin as
// a "view.pin" span when the context carries a query trace.
func (e *Engine) pinView(ctx context.Context) *View {
	_, sp := obs.StartSpan(ctx, "view.pin")
	v := e.CurrentView()
	sp.SetCounter("height", int64(v.height))
	sp.SetCounter("epoch", int64(v.epoch))
	sp.Finish()
	return v
}

// Height returns the view's pinned chain height.
func (v *View) Height() uint64 { return v.height }

// Epoch returns the view's publish sequence number.
func (v *View) Epoch() uint64 { return v.epoch }

// Tip returns the newest block header inside the view, or nil for an
// empty chain.
func (v *View) Tip() *types.BlockHeader { return v.tip }

// LastTid returns the largest transaction id committed within the view.
func (v *View) LastTid() uint64 { return v.lastTid }

// NumBlocks returns the pinned height; the view satisfies exec.Chain
// with it.
func (v *View) NumBlocks() int { return int(v.height) }

// Block reads a block inside the view, through the engine's cache. The
// store and caches take no engine lock.
func (v *View) Block(bid uint64) (*types.Block, error) {
	if bid >= v.height {
		return nil, fmt.Errorf("core: block %d beyond view height %d", bid, v.height)
	}
	return v.e.Block(bid)
}

// Tx reads one transaction by (block, position) inside the view.
func (v *View) Tx(bid uint64, pos uint32) (*types.Transaction, error) {
	if bid >= v.height {
		return nil, fmt.Errorf("core: block %d beyond view height %d", bid, v.height)
	}
	return v.e.Tx(bid, pos)
}

// BlockIdx returns the view's pinned block-level index.
func (v *View) BlockIdx() blockindex.Reader { return v.bidx }

// TableBlocks returns the view's table-level bitmap for a table name or
// a "senid:<id>" key: the live bitmap masked to the pinned height.
func (v *View) TableBlocks(name string) *bitmap.Bitmap {
	return v.e.tableIdx.Blocks(name).And(v.mask)
}

// Layered returns the layered index on table.col as of the view, or
// nil. The index object is the live one — per-block state for blocks
// inside the view is immutable — but the membership is pinned: an index
// created after the view was published is not visible through it.
func (v *View) Layered(table, col string) *layered.Index {
	return v.lidx[table+"."+col]
}

// AuthIndex returns the ALI on table.col as of the view, or nil.
func (v *View) AuthIndex(table, col string) *auth.ALI {
	return v.alis[table+"."+col]
}

// Table resolves a table schema as of the view.
func (v *View) Table(name string) (*schema.Table, error) {
	t, ok := v.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("schema: no such table %q", name)
	}
	return t, nil
}

// HasTable reports whether the view's catalog defines the table.
func (v *View) HasTable(name string) bool {
	_, ok := v.tables[strings.ToLower(name)]
	return ok
}

// Contract returns a contract deployed as of the view.
func (v *View) Contract(name string) (*contract.Contract, error) {
	c, ok := v.contracts[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("contract: no contract %q", name)
	}
	return c, nil
}

// Obs returns the engine's metrics registry; the view satisfies
// exec.ObsChain with it.
func (v *View) Obs() *obs.Registry { return v.e.cfg.Obs }

// Parallelism returns the engine's worker bound; the view satisfies
// exec.ParallelChain with it.
func (v *View) Parallelism() int { return v.e.Parallelism() }

// estimateCap bounds the second-level matches estimateLayered counts,
// keeping planning cheap on huge results. (It was a `const cap` local
// once — shadowing the builtin — which the sebdb-vet shadowbuiltin
// analyzer now rejects.)
const estimateCap = 200_000

// estimateLayered estimates the result size p of driving the layered
// index with one of preds, by counting second-level matches inside the
// view (index-only, no transaction reads), capped at estimateCap.
func (v *View) estimateLayered(tbl *schema.Table, preds []sqlparser.Pred) (int, bool) {
	for _, p := range preds {
		idx := v.Layered(tbl.Name, p.Col)
		if idx == nil {
			continue
		}
		lo, hi, exact := predBoundsOf(p)
		if !exact {
			continue
		}
		total := 0
		cand := idx.CandidateBlocks(lo, hi)
		cand.And(v.mask)
		cand.ForEach(func(bid int) bool {
			idx.BlockRange(uint64(bid), lo, hi, func(types.Value, uint32) bool {
				total++
				return total < estimateCap
			})
			return total < estimateCap
		})
		return total, true
	}
	return -1, false
}
