package core

import (
	"fmt"

	"sebdb/internal/auth"
	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/blockindex"
	"sebdb/internal/index/layered"
	"sebdb/internal/schema"
	"sebdb/internal/types"
)

// The methods in this file implement exec.Chain: the read surface the
// query operators run against, with the configured cache policy
// interposed between them and the block files.

// NumBlocks returns the chain height.
func (e *Engine) NumBlocks() int { return e.store.Count() }

// Block reads a block, serving and populating the block cache when the
// engine runs in CacheBlocks mode.
func (e *Engine) Block(bid uint64) (*types.Block, error) {
	key := fmt.Sprintf("b:%d", bid)
	if e.blockCache != nil {
		if v, ok := e.blockCache.Get(key); ok {
			return v.(*types.Block), nil
		}
	}
	b, err := e.store.Block(bid)
	if err != nil {
		return nil, err
	}
	if e.blockCache != nil {
		e.blockCache.Put(key, b, int64(len(b.EncodeBytes())))
	}
	return b, nil
}

// Tx reads one transaction by (block, position). In CacheTxs mode the
// individual transaction is cached — the paper's transaction cache,
// which §VII-H shows beating the block cache for index-driven queries.
func (e *Engine) Tx(bid uint64, pos uint32) (*types.Transaction, error) {
	key := fmt.Sprintf("t:%d:%d", bid, pos)
	if e.txCache != nil {
		if v, ok := e.txCache.Get(key); ok {
			return v.(*types.Transaction), nil
		}
	}
	var tx *types.Transaction
	if e.blockCache != nil {
		// Block-cache policy: whole blocks are the cache unit, so route
		// the read through them.
		b, err := e.Block(bid)
		if err != nil {
			return nil, err
		}
		if pos >= uint32(len(b.Txs)) {
			return nil, fmt.Errorf("core: block %d has no tx at %d", bid, pos)
		}
		tx = b.Txs[pos]
	} else {
		// Tuple-sized random read (Equation 3's p*(t_S+t_T) access).
		var err error
		tx, err = e.store.ReadTx(bid, pos)
		if err != nil {
			return nil, err
		}
	}
	if e.txCache != nil {
		e.txCache.Put(key, tx, int64(tx.Size()))
	}
	return tx, nil
}

// BlockIdx returns the block-level index.
func (e *Engine) BlockIdx() *blockindex.Index { return e.blockIdx }

// TableBlocks returns the table-level bitmap for a table name or a
// "senid:<id>" key.
func (e *Engine) TableBlocks(name string) *bitmap.Bitmap {
	return e.tableIdx.Blocks(name)
}

// Layered returns the layered index on table.col (or the global system
// index for table == ""), or nil when absent.
func (e *Engine) Layered(table, col string) *layered.Index {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lidx[table+"."+col]
}

// Table resolves a table schema.
func (e *Engine) Table(name string) (*schema.Table, error) {
	return e.catalog.Lookup(name)
}

// CacheStats reports the active cache's cumulative hits and misses.
func (e *Engine) CacheStats() (hits, misses uint64) {
	switch {
	case e.blockCache != nil:
		return e.blockCache.Stats()
	case e.txCache != nil:
		return e.txCache.Stats()
	}
	return 0, 0
}

// sampleColumn collects up to limit values of table.col from the chain
// for histogram construction (§IV-B: "created by sampling historical
// transactions during index creating").
func (e *Engine) sampleColumn(spec indexSpec, limit int) ([]float64, error) {
	var out []float64
	for bid := 0; bid < e.store.Count() && len(out) < limit; bid++ {
		b, err := e.Block(uint64(bid))
		if err != nil {
			return nil, err
		}
		for _, tx := range b.Txs {
			v, ok, err := e.valueFor(spec, tx)
			if err != nil {
				return nil, err
			}
			if ok && v.Numeric() {
				out = append(out, v.Float())
				if len(out) >= limit {
					break
				}
			}
		}
	}
	return out, nil
}

// CreateIndex creates a layered index on table.col, backfilling it over
// every existing block. Continuous (numeric) columns get an equal-depth
// histogram first level; discrete columns a per-value bitmap. It is a
// no-op if the index already exists.
func (e *Engine) CreateIndex(table, col string) error {
	tbl, err := e.catalog.Lookup(table)
	if err != nil {
		return err
	}
	kind, _, err := tbl.ColumnKind(col)
	if err != nil {
		return err
	}
	spec := indexSpec{table: tbl.Name, col: col}
	e.mu.RLock()
	_, exists := e.lidx[spec.key()]
	e.mu.RUnlock()
	if exists {
		return nil
	}

	var idx *layered.Index
	if kind == types.KindInt || kind == types.KindDecimal || kind == types.KindTimestamp {
		sample, err := e.sampleColumn(spec, 100_000)
		if err != nil {
			return err
		}
		idx = layered.NewContinuous(col, layered.NewEqualDepth(sample, e.cfg.HistogramDepth))
	} else {
		idx = layered.NewDiscrete(col)
	}
	if err := e.backfillLayered(spec, idx); err != nil {
		return err
	}
	e.mu.Lock()
	e.lidx[spec.key()] = idx
	e.mu.Unlock()
	return e.saveIndexMeta()
}

func (e *Engine) backfillLayered(spec indexSpec, idx *layered.Index) error {
	for bid := 0; bid < e.store.Count(); bid++ {
		b, err := e.Block(uint64(bid))
		if err != nil {
			return err
		}
		entries, err := e.entriesFor(spec.key(), b)
		if err != nil {
			return err
		}
		idx.AppendBlock(uint64(bid), entries)
	}
	return nil
}

// CreateAuthIndex creates an ALI on table.col ("" table addresses the
// system columns, e.g. CreateAuthIndex("", "tname") for authenticated
// tracking), backfilled over the existing chain.
func (e *Engine) CreateAuthIndex(table, col string) error {
	spec := indexSpec{table: table, col: col}
	// System columns always get a discrete first level, so kind stays
	// KindString for them.
	kind := types.KindString
	if table != "" {
		tbl, err := e.catalog.Lookup(table)
		if err != nil {
			return err
		}
		k, _, err := tbl.ColumnKind(col)
		if err != nil {
			return err
		}
		spec.table = tbl.Name
		kind = k
	} else if _, err := types.SystemColumnKind(col); err != nil {
		return err
	}
	e.mu.RLock()
	_, exists := e.alis[spec.key()]
	e.mu.RUnlock()
	if exists {
		return nil
	}

	var ali *auth.ALI
	if kind == types.KindInt || kind == types.KindDecimal || kind == types.KindTimestamp {
		sample, err := e.sampleColumn(spec, 100_000)
		if err != nil {
			return err
		}
		ali = auth.NewContinuous(col,
			layered.NewEqualDepth(sample, e.cfg.HistogramDepth), e.cfg.MBTreeFanout)
	} else {
		ali = auth.NewDiscrete(col, e.cfg.MBTreeFanout)
	}
	for bid := 0; bid < e.store.Count(); bid++ {
		b, err := e.Block(uint64(bid))
		if err != nil {
			return err
		}
		recs, err := e.recordsFor(spec.key(), b)
		if err != nil {
			return err
		}
		ali.AppendBlock(uint64(bid), recs)
	}
	e.mu.Lock()
	e.alis[spec.key()] = ali
	e.mu.Unlock()
	return e.saveIndexMeta()
}

// AuthIndex returns the ALI on table.col, or nil.
func (e *Engine) AuthIndex(table, col string) *auth.ALI {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.alis[table+"."+col]
}
