package core

import (
	"fmt"

	"sebdb/internal/auth"
	"sebdb/internal/cache"
	"sebdb/internal/index/bitmap"
	"sebdb/internal/index/blockindex"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/parallel"
	"sebdb/internal/schema"
	"sebdb/internal/types"
)

// The methods in this file implement exec.Chain: the read surface the
// query operators run against, with the configured cache policy
// interposed between them and the block files.

// NumBlocks returns the chain height.
func (e *Engine) NumBlocks() int { return e.store.Count() }

// Block reads a block, serving and populating the block cache when the
// engine runs in CacheBlocks mode.
func (e *Engine) Block(bid uint64) (*types.Block, error) {
	key := fmt.Sprintf("b:%d", bid)
	if e.blockCache != nil {
		if v, ok := e.blockCache.Get(key); ok {
			return v.(*types.Block), nil
		}
	}
	b, err := e.store.Block(bid)
	if err != nil {
		return nil, err
	}
	if e.blockCache != nil {
		// The store knows the block's encoded length; re-serializing the
		// block just to size the cache entry would double the miss cost.
		size, err := e.store.BodyLen(bid)
		if err != nil {
			return nil, err
		}
		e.blockCache.Put(key, b, size)
	}
	return b, nil
}

// Tx reads one transaction by (block, position). In CacheTxs mode the
// individual transaction is cached — the paper's transaction cache,
// which §VII-H shows beating the block cache for index-driven queries.
func (e *Engine) Tx(bid uint64, pos uint32) (*types.Transaction, error) {
	key := fmt.Sprintf("t:%d:%d", bid, pos)
	if e.txCache != nil {
		if v, ok := e.txCache.Get(key); ok {
			return v.(*types.Transaction), nil
		}
	}
	var tx *types.Transaction
	if e.blockCache != nil {
		// Block-cache policy: whole blocks are the cache unit, so route
		// the read through them.
		b, err := e.Block(bid)
		if err != nil {
			return nil, err
		}
		if pos >= uint32(len(b.Txs)) {
			return nil, fmt.Errorf("core: block %d has no tx at %d", bid, pos)
		}
		tx = b.Txs[pos]
	} else {
		// Tuple-sized random read (Equation 3's p*(t_S+t_T) access).
		var err error
		tx, err = e.store.ReadTx(bid, pos)
		if err != nil {
			return nil, err
		}
	}
	if e.txCache != nil {
		e.txCache.Put(key, tx, int64(tx.Size()))
	}
	return tx, nil
}

// BlockIdx returns the live block-level index (reads that need pinned
// semantics go through CurrentView().BlockIdx() instead).
func (e *Engine) BlockIdx() blockindex.Reader { return e.blockIdx }

// TableBlocks returns the table-level bitmap for a table name or a
// "senid:<id>" key.
func (e *Engine) TableBlocks(name string) *bitmap.Bitmap {
	return e.tableIdx.Blocks(name)
}

// Layered returns the layered index on table.col (or the global system
// index for table == ""), or nil when absent. It answers from the
// current view's immutable map — no engine lock — so the engine's
// exec.Chain surface is as contention-free as the view's.
func (e *Engine) Layered(table, col string) *layered.Index {
	return e.CurrentView().Layered(table, col)
}

// Table resolves a table schema.
func (e *Engine) Table(name string) (*schema.Table, error) {
	return e.catalog.Lookup(name)
}

// CacheStats snapshots the active cache's counters: cumulative hits,
// misses, evictions and lock contention plus current occupancy,
// aggregated over every shard — the same shape the unsharded cache
// reported. A CacheNone engine reports zeros.
func (e *Engine) CacheStats() cache.Counters {
	switch {
	case e.blockCache != nil:
		return e.blockCache.Counters()
	case e.txCache != nil:
		return e.txCache.Counters()
	}
	return cache.Counters{}
}

// CacheShardStats returns the active cache's per-shard counters in
// stripe order (nil for a CacheNone engine), exposing occupancy skew
// and which stripes actually contend.
func (e *Engine) CacheShardStats() []cache.Counters {
	switch {
	case e.blockCache != nil:
		return e.blockCache.ShardCounters()
	case e.txCache != nil:
		return e.txCache.ShardCounters()
	}
	return nil
}

// sampleColumn collects up to limit values of table.col from the chain
// for histogram construction (§IV-B: "created by sampling historical
// transactions during index creating"). Blocks are decoded by the
// worker pool; values are concatenated in height order and trimmed at
// limit, so the sample matches a sequential scan exactly.
func (e *Engine) sampleColumn(spec indexSpec, limit int) ([]float64, error) {
	var out []float64
	err := parallel.Ordered(e.Parallelism(), e.store.Count(),
		func(bid int) ([]float64, error) {
			b, err := e.Block(uint64(bid))
			if err != nil {
				return nil, err
			}
			value := e.extractorFor(spec.key())
			var vals []float64
			for _, tx := range b.Txs {
				v, ok, err := value(tx)
				if err != nil {
					return nil, err
				}
				if ok && v.Numeric() {
					vals = append(vals, v.Float())
				}
			}
			return vals, nil
		},
		func(_ int, vals []float64) error {
			out = append(out, vals...)
			if len(out) >= limit {
				return parallel.Stop
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// CreateIndex creates a layered index on table.col, backfilling it over
// every existing block. Continuous (numeric) columns get an equal-depth
// histogram first level; discrete columns a per-value bitmap. It is a
// no-op if the index already exists.
func (e *Engine) CreateIndex(table, col string) error {
	tbl, err := e.catalog.Lookup(table)
	if err != nil {
		return err
	}
	kind, _, err := tbl.ColumnKind(col)
	if err != nil {
		return err
	}
	spec := indexSpec{table: tbl.Name, col: col}
	e.mu.RLock()
	_, exists := e.lidx[spec.key()]
	e.mu.RUnlock()
	if exists {
		return nil
	}

	var idx *layered.Index
	if kind == types.KindInt || kind == types.KindDecimal || kind == types.KindTimestamp {
		sample, err := e.sampleColumn(spec, 100_000)
		if err != nil {
			return err
		}
		idx = layered.NewContinuous(col, layered.NewEqualDepth(sample, e.cfg.HistogramDepth))
	} else {
		idx = layered.NewDiscrete(col)
	}
	// Backfill without holding e.mu so commits keep flowing, then close
	// the gap under the lock: blocks committed after the snapshot are
	// indexed before the map registration makes the index visible
	// (commits take e.mu too), so no committed block is ever missed.
	done := uint64(e.store.Count())
	if err := e.backfillLayered(spec, idx, 0, done); err != nil {
		return err
	}
	e.mu.Lock()
	if _, exists := e.lidx[spec.key()]; exists {
		e.mu.Unlock()
		return nil
	}
	if err := e.backfillLayered(spec, idx, done, uint64(e.store.Count())); err != nil {
		e.mu.Unlock()
		return err
	}
	e.lidx[spec.key()] = idx
	// Republish so the registration reaches readers: views snapshot the
	// index maps, so without a new view the index would stay invisible.
	e.publishViewLocked()
	e.mu.Unlock()
	return e.saveIndexMeta()
}

// backfillLayered feeds the blocks of [lo, hi) to idx, decoding ahead
// with the worker pool; AppendBlock runs on this goroutine in height
// order, as the layered index requires.
func (e *Engine) backfillLayered(spec indexSpec, idx *layered.Index, lo, hi uint64) error {
	if lo >= hi {
		return nil
	}
	it, err := e.store.Blocks(lo, hi)
	if err != nil {
		return err
	}
	defer it.Close()
	return parallel.Ordered(e.Parallelism(), it.Len(),
		func(i int) ([]layered.Entry, error) {
			b, err := it.Read(lo + uint64(i))
			if err != nil {
				return nil, err
			}
			return e.entriesFor(spec.key(), b)
		},
		func(i int, entries []layered.Entry) error {
			idx.AppendBlock(lo+uint64(i), entries)
			return nil
		})
}

// CreateAuthIndex creates an ALI on table.col ("" table addresses the
// system columns, e.g. CreateAuthIndex("", "tname") for authenticated
// tracking), backfilled over the existing chain.
func (e *Engine) CreateAuthIndex(table, col string) error {
	spec := indexSpec{table: table, col: col}
	// System columns always get a discrete first level, so kind stays
	// KindString for them.
	kind := types.KindString
	if table != "" {
		tbl, err := e.catalog.Lookup(table)
		if err != nil {
			return err
		}
		k, _, err := tbl.ColumnKind(col)
		if err != nil {
			return err
		}
		spec.table = tbl.Name
		kind = k
	} else if _, err := types.SystemColumnKind(col); err != nil {
		return err
	}
	e.mu.RLock()
	_, exists := e.alis[spec.key()]
	e.mu.RUnlock()
	if exists {
		return nil
	}

	var ali *auth.ALI
	if kind == types.KindInt || kind == types.KindDecimal || kind == types.KindTimestamp {
		sample, err := e.sampleColumn(spec, 100_000)
		if err != nil {
			return err
		}
		ali = auth.NewContinuous(col,
			layered.NewEqualDepth(sample, e.cfg.HistogramDepth), e.cfg.MBTreeFanout)
	} else {
		ali = auth.NewDiscrete(col, e.cfg.MBTreeFanout)
	}
	// Same registration protocol as CreateIndex: lock-free backfill,
	// then close the commit gap under e.mu before going visible.
	done := uint64(e.store.Count())
	if err := e.backfillALI(spec, ali, 0, done); err != nil {
		return err
	}
	e.mu.Lock()
	if _, exists := e.alis[spec.key()]; exists {
		e.mu.Unlock()
		return nil
	}
	if err := e.backfillALI(spec, ali, done, uint64(e.store.Count())); err != nil {
		e.mu.Unlock()
		return err
	}
	e.alis[spec.key()] = ali
	// Republish for the same reason as CreateIndex: view membership is
	// pinned at publish time.
	e.publishViewLocked()
	e.mu.Unlock()
	return e.saveIndexMeta()
}

// backfillALI feeds the blocks of [lo, hi) to ali, decoding ahead with
// the worker pool and appending in height order.
func (e *Engine) backfillALI(spec indexSpec, ali *auth.ALI, lo, hi uint64) error {
	if lo >= hi {
		return nil
	}
	it, err := e.store.Blocks(lo, hi)
	if err != nil {
		return err
	}
	defer it.Close()
	return parallel.Ordered(e.Parallelism(), it.Len(),
		func(i int) ([]mbtree.Record, error) {
			b, err := it.Read(lo + uint64(i))
			if err != nil {
				return nil, err
			}
			return e.recordsFor(spec.key(), b)
		},
		func(i int, recs []mbtree.Record) error {
			ali.AppendBlock(lo+uint64(i), recs)
			return nil
		})
}

// AuthIndex returns the ALI on table.col, or nil. Like Layered it
// answers from the current view's immutable map, lock-free.
func (e *Engine) AuthIndex(table, col string) *auth.ALI {
	return e.CurrentView().AuthIndex(table, col)
}
