package core

// The background storage compactor: when Config.CompressAfter is set,
// a goroutine follows the chain (via HeightSignal) and rewrites sealed
// segments with per-record compression once they fall far enough
// behind the active tail. Everything runs through
// storage.Store.CompressSegment, whose swap protocol keeps concurrent
// readers correct; the goroutine here only decides when.

// startCompactor launches the recompression goroutine. Called once
// from Open, before the engine is shared.
func (e *Engine) startCompactor() {
	e.compactStop = make(chan struct{})
	e.compactDone = make(chan struct{})
	go e.compactLoop()
}

// stopCompactor stops the goroutine and waits for an in-flight pass to
// finish, so Close never races a rewrite against the store shutdown.
// Safe to call when the compactor never started, and idempotent.
func (e *Engine) stopCompactor() {
	if e.compactStop == nil {
		return
	}
	close(e.compactStop)
	<-e.compactDone
	e.compactStop, e.compactDone = nil, nil
}

// compactLoop runs one recompression pass, then sleeps until the chain
// advances (a segment can only seal when a commit rolls the store to a
// new file). The signal is armed before the pass so a roll landing
// mid-pass is not missed.
func (e *Engine) compactLoop() {
	defer close(e.compactDone)
	for {
		sig := e.HeightSignal()
		if err := e.CompressSealed(e.cfg.CompressAfter); err != nil {
			e.log.Warn("recompression pass failed", "error", err.Error())
		}
		select {
		case <-e.compactStop:
			return
		case <-sig:
		}
	}
}

// CompressSealed rewrites every sealed segment at least keep segments
// behind the active tail with per-record compression (keep below 1 is
// treated as 1: all sealed segments). Segments an earlier sweep
// already processed are skipped. It is the compactor's unit of work
// and an explicit entry point for operators and benchmarks.
func (e *Engine) CompressSealed(keep int) error {
	for _, seg := range e.store.CompressTargets(keep) {
		if err := e.store.CompressSegment(seg); err != nil {
			return err
		}
	}
	return nil
}

// DiskBytes reports the total on-disk size of the chain's segment
// files — the footprint compression shrinks.
func (e *Engine) DiskBytes() (int64, error) { return e.store.DiskBytes() }
