package core

// Tests for the application layer wired through the engine: channel
// access control and smart contracts with embedded SQL (paper §III-B).

import (
	"errors"
	"strings"
	"testing"

	"sebdb/internal/accessctl"
	"sebdb/internal/types"
)

func TestAccessControlOnStatements(t *testing.T) {
	e := testEngine(t, Config{})
	mustExec(t, e, `CREATE donate (donor string, project string, amount decimal)`)
	mustExec(t, e, `CREATE secretdeals (partner string, amount decimal)`)
	e.Flush()

	acl := e.AccessControl()
	if err := acl.CreateChannel("inner", "org1", "org2"); err != nil {
		t.Fatal(err)
	}
	if err := acl.AssignTable("secretdeals", "inner"); err != nil {
		t.Fatal(err)
	}

	// Members operate normally.
	if _, err := e.ExecuteAs("org1", `INSERT INTO secretdeals ("acme", 5)`); err != nil {
		t.Errorf("member insert denied: %v", err)
	}
	if _, err := e.ExecuteAs("org2", `SELECT * FROM secretdeals`); err != nil {
		t.Errorf("member select denied: %v", err)
	}
	// Outsiders are rejected on reads, writes and joins touching the
	// private table, but keep access to public tables.
	var denied *accessctl.ErrDenied
	if _, err := e.ExecuteAs("outsider", `SELECT * FROM secretdeals`); !errors.As(err, &denied) {
		t.Errorf("outsider select: %v", err)
	}
	if _, err := e.ExecuteAs("outsider", `INSERT INTO secretdeals ("x", 1)`); err == nil {
		t.Error("outsider insert allowed")
	}
	if _, err := e.ExecuteAs("outsider",
		`SELECT * FROM donate, secretdeals ON donate.amount = secretdeals.amount`); err == nil {
		t.Error("outsider join through private table allowed")
	}
	if _, err := e.ExecuteAs("outsider", `SELECT * FROM donate`); err != nil {
		t.Errorf("public table blocked: %v", err)
	}
	// Writer restriction within the channel.
	if err := acl.RestrictWriters("inner", "org1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteAs("org2", `INSERT INTO secretdeals ("y", 2)`); err == nil {
		t.Error("restricted writer allowed")
	}
	if _, err := e.ExecuteAs("org2", `SELECT * FROM secretdeals`); err != nil {
		t.Errorf("reader hit by writer restriction: %v", err)
	}
}

func TestContractDeployInvoke(t *testing.T) {
	e := testEngine(t, Config{BlockMaxTxs: 4})
	mustExec(t, e, `CREATE donate (donor string, project string, amount decimal)`)
	e.Flush()

	err := e.DeployContract("charity", "give", []string{
		`INSERT INTO donate ($sender, $1, $2)`,
		`SELECT * FROM donate WHERE project = $1`,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Flush()

	res, err := e.InvokeContract("jack", "give", types.Str("education"), types.Dec(75))
	if err != nil {
		t.Fatal(err)
	}
	e.Flush()
	// Final SELECT sees the prior INSERT? The insert goes to the mempool
	// and is not yet packaged when the select runs, so the first invoke
	// may see zero rows; invoke again after flush and check growth.
	res2, err := e.InvokeContract("mary", "give", types.Str("education"), types.Dec(25))
	if err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if len(res2.Rows) < len(res.Rows)+1 {
		t.Errorf("contract inserts not accumulating: %d then %d", len(res.Rows), len(res2.Rows))
	}
	// The sender placeholder bound correctly.
	found := false
	q := mustExec(t, e, `SELECT senid FROM donate WHERE donor = "jack"`)
	for _, row := range q.Rows {
		if row[0] == types.Str("jack") {
			found = true
		}
	}
	if !found {
		t.Error("contract did not execute as the invoking sender")
	}

	// Deployment replays on a follower applying the same blocks.
	e2 := testEngine(t, Config{})
	for h := uint64(0); h < e.Height(); h++ {
		b, err := e.Block(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e2.Contracts().Get("give"); err != nil {
		t.Errorf("deployment did not replay: %v", err)
	}
	// And is invocable there.
	if _, err := e2.InvokeContract("zoe", "give", types.Str("health"), types.Dec(5)); err != nil {
		t.Errorf("replayed contract invocation: %v", err)
	}
}

func TestContractErrors(t *testing.T) {
	e := testEngine(t, Config{})
	mustExec(t, e, `CREATE t (a int)`)
	if err := e.DeployContract("x", "bad", []string{`NOT SQL`}); err == nil {
		t.Error("invalid contract deployed")
	}
	if _, err := e.InvokeContract("x", "ghost"); err == nil {
		t.Error("missing contract invoked")
	}
	if err := e.DeployContract("x", "ok", []string{`INSERT INTO t ($1)`}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InvokeContract("x", "ok"); err == nil {
		t.Error("arity mismatch accepted")
	}
	// A contract statement hitting access control fails cleanly.
	e.AccessControl().CreateChannel("priv", "insider")
	e.AccessControl().AssignTable("t", "priv")
	_, err := e.InvokeContract("outsider", "ok", types.Int(1))
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("contract bypassed access control: %v", err)
	}
}
