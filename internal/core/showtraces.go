package core

import (
	"strconv"
	"strings"

	"sebdb/internal/obs"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// execShowTraces renders the flight recorder's rings through the
// EXPLAIN tree renderer: `SHOW TRACES` lists the most recent sampled
// statements, `SHOW SLOW TRACES` the captured slow statements, newest
// first, one indented span row per stage with the trace ID on each
// root row. With no recorder configured the result is empty.
func (e *Engine) execShowTraces(s *sqlparser.ShowTraces) (*Result, error) {
	res := &Result{Columns: []string{"trace_id", "stage", "micros",
		"blocks_read", "txs_examined", "index_probes", "detail"}}
	recs := e.cfg.Recorder.Recent()
	if s.Slow {
		recs = e.cfg.Recorder.Slow()
	}
	if s.Limit > 0 && len(recs) > s.Limit {
		recs = recs[:s.Limit]
	}
	for _, rec := range recs {
		rootDetail := []string{"sql=" + strconv.Quote(rec.SQL)}
		if rec.Err != "" {
			rootDetail = append(rootDetail, "err="+strconv.Quote(rec.Err))
		}
		if rec.Slow {
			rootDetail = append(rootDetail, "slow=true")
		}
		if rec.Root == nil {
			// An unsampled statement promoted on latency alone: no span
			// tree was collected, so only the root row exists.
			res.Rows = append(res.Rows, []types.Value{
				types.Str(rec.ID), types.Str(rec.Stage), types.Int(rec.Micros),
				types.Null, types.Null, types.Null,
				types.Str(strings.Join(rootDetail, " ")),
			})
			continue
		}
		var walk func(sp *obs.Span, depth int, id string, extra []string)
		walk = func(sp *obs.Span, depth int, id string, extra []string) {
			cells, rest := spanCells(sp, depth)
			rest = append(rest, extra...)
			row := append([]types.Value{types.Str(id)}, cells...)
			row = append(row, types.Str(strings.Join(rest, " ")))
			res.Rows = append(res.Rows, row)
			for _, ch := range sp.Children() {
				walk(ch, depth+1, "", nil)
			}
		}
		walk(rec.Root, 0, rec.ID, rootDetail)
	}
	return res, nil
}
