package core

import (
	"fmt"
	"sort"

	"sebdb/internal/auth"
	"sebdb/internal/index/layered"
	"sebdb/internal/mbtree"
	"sebdb/internal/snapshot"
)

// Checkpoint integration: the engine can freeze its entire derived
// state — storage metadata, catalog, contracts, table bitmaps, layered
// indexes and ALIs — into a snapshot.Checkpoint pinned to the current
// tip, and seed itself from one on Open so only the post-checkpoint
// suffix needs replaying. The chain stays the sole source of truth: a
// checkpoint that fails any verification is discarded and Open falls
// back to full replay.

// WriteCheckpoint freezes the engine's derived state at the current
// height and atomically persists it to <dir>/snapshots. Only the state
// snapshot happens under the engine lock; encoding and the fsync+rename
// run outside it, so queries and commits proceed while the checkpoint
// hits disk. It is called automatically every Config.CheckpointInterval
// blocks; operators and tests may also call it directly.
func (e *Engine) WriteCheckpoint() error {
	c, err := e.BuildCheckpoint()
	if err != nil {
		return err
	}
	return e.persistCheckpoint(c)
}

// BuildCheckpoint freezes the engine's derived state at the current
// height without persisting it. Fast-sync uses it to derive the
// reference state a peer's checkpoint is validated against.
func (e *Engine) BuildCheckpoint() (*snapshot.Checkpoint, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.buildCheckpointLocked()
}

// maybeBuildCheckpointLocked assembles a checkpoint when the chain
// height hits the configured interval, for the caller to persist after
// releasing e.mu (the build deep-copies, so the encode and fsync touch
// nothing the lock guards). Checkpointing is an optimisation, so
// failures never fail the commit; they are counted and kept for
// CheckpointErr.
func (e *Engine) maybeBuildCheckpointLocked() *snapshot.Checkpoint {
	iv := e.cfg.CheckpointInterval
	if iv <= 0 {
		return nil
	}
	h := uint64(e.store.Count())
	if h == 0 || h%uint64(iv) != 0 {
		return nil
	}
	c, err := e.buildCheckpointLocked()
	if err != nil {
		e.ckptErr = err
		e.cfg.Obs.Counter("sebdb_snapshot_write_errors_total").Inc()
		return nil
	}
	return c
}

// finishCheckpoint persists a checkpoint built during a commit and
// records the outcome for CheckpointErr. Callers must not hold e.mu.
func (e *Engine) finishCheckpoint(c *snapshot.Checkpoint) {
	if c == nil {
		return
	}
	err := e.persistCheckpoint(c)
	if err != nil {
		e.cfg.Obs.Counter("sebdb_snapshot_write_errors_total").Inc()
		e.log.Error("checkpoint persist failed", "height", c.Height, "err", err)
	} else {
		e.log.Info("checkpoint persisted", "height", c.Height)
	}
	e.mu.Lock()
	e.ckptErr = err
	e.mu.Unlock()
}

// persistCheckpoint serialises checkpoint writes and keeps the manifest
// monotonic: when two commits race past their interval boundaries, the
// slower (older) checkpoint is dropped rather than repointing the
// manifest backwards.
func (e *Engine) persistCheckpoint(c *snapshot.Checkpoint) error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	// Strictly older checkpoints are dropped; an equal-height write (an
	// explicit WriteCheckpoint after index creation, say) goes through —
	// it renames over the same file and cannot regress the manifest.
	if c.Height < e.ckptFloor {
		return nil
	}
	//sebdb:ignore-lockio reason: ckptMu exists precisely to serialise checkpoint persists against each other; it is never taken on the read or commit path
	if err := e.snapDir.Write(c); err != nil {
		return err
	}
	e.ckptFloor = c.Height
	return nil
}

// CheckpointErr returns the error of the most recent automatic
// checkpoint attempt, or nil if it succeeded (or none was attempted).
func (e *Engine) CheckpointErr() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ckptErr
}

// SnapshotDir exposes the engine's checkpoint directory — the node
// layer serves fast-sync from it.
func (e *Engine) SnapshotDir() *snapshot.Dir { return e.snapDir }

// buildCheckpointLocked assembles a checkpoint of the state derived
// from blocks [0, Count). Callers hold e.mu, so the view is consistent:
// every index covers exactly the current height.
func (e *Engine) buildCheckpointLocked() (*snapshot.Checkpoint, error) {
	h := uint64(e.store.Count())
	if h == 0 {
		return nil, fmt.Errorf("core: cannot checkpoint an empty chain")
	}
	m, err := e.store.Meta(h)
	if err != nil {
		return nil, err
	}
	c := &snapshot.Checkpoint{
		Height:   h,
		Anchor:   m.Headers[h-1].Hash(),
		LastTid:  e.lastTid,
		LastTs:   e.lastTs,
		Store:    m,
		TableIdx: make(map[string][]uint32),
	}
	for _, name := range e.catalog.Names() {
		t, err := e.catalog.Lookup(name)
		if err != nil {
			return nil, err
		}
		c.Tables = append(c.Tables, t)
	}
	for _, name := range e.contracts.Names() {
		ct, err := e.contracts.Get(name)
		if err != nil {
			return nil, err
		}
		c.Contracts = append(c.Contracts, ct)
	}
	for _, k := range e.tableIdx.Keys() {
		ids := e.tableIdx.Blocks(k).Slice()
		out := make([]uint32, len(ids))
		for i, b := range ids {
			out[i] = uint32(b)
		}
		c.TableIdx[k] = out
	}
	for _, key := range sortedKeys(e.lidx) {
		idx := e.lidx[key]
		st := snapshot.IndexState{Key: key, Attr: idx.Attr(), Continuous: idx.Continuous()}
		if hist := idx.Histogram(); hist != nil {
			st.Bounds = hist.Bounds()
		}
		st.Blocks = make([][]layered.Entry, h)
		for bid := uint64(0); bid < h; bid++ {
			st.Blocks[bid] = idx.BlockEntries(bid)
		}
		c.Indexes = append(c.Indexes, st)
	}
	for _, key := range sortedKeys(e.alis) {
		ali := e.alis[key]
		st := snapshot.ALIState{Key: key, Attr: ali.Attr(), Continuous: ali.Continuous()}
		if hist := ali.Histogram(); hist != nil {
			st.Bounds = hist.Bounds()
		}
		st.Blocks = make([][]mbtree.Record, h)
		for bid := uint64(0); bid < h; bid++ {
			st.Blocks[bid] = ali.BlockRecords(bid)
		}
		c.ALIs = append(c.ALIs, st)
	}
	return c, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// restoreCheckpoint seeds a freshly constructed engine from a decoded
// checkpoint. It runs during Open before the engine is shared, so no
// locking is needed. Any inconsistency is an error; the caller discards
// the engine and falls back to full replay.
func (e *Engine) restoreCheckpoint(c *snapshot.Checkpoint) error {
	for _, t := range c.Tables {
		if err := e.catalog.Define(t); err != nil {
			return fmt.Errorf("core: checkpoint catalog: %w", err)
		}
	}
	for _, ct := range c.Contracts {
		if err := e.contracts.Register(ct); err != nil {
			return fmt.Errorf("core: checkpoint contracts: %w", err)
		}
	}
	e.lastTid = c.LastTid
	e.lastTs = c.LastTs
	for k, ids := range c.TableIdx {
		for _, b := range ids {
			e.tableIdx.Mark(k, int(b))
		}
	}
	// The block-level index is cheap to rebuild from the headers the
	// checkpoint already carries, so it is not serialised.
	for i := range c.Store.Headers {
		h := &c.Store.Headers[i]
		last := h.FirstTid
		if h.TxCount > 0 {
			last = h.FirstTid + uint64(h.TxCount) - 1
		}
		e.blockIdx.Append(uint64(i), h.FirstTid, last, h.Timestamp)
	}
	for _, st := range c.Indexes {
		if uint64(len(st.Blocks)) != c.Height {
			return fmt.Errorf("core: checkpoint index %q covers %d of %d blocks", st.Key, len(st.Blocks), c.Height)
		}
		var idx *layered.Index
		if st.Continuous {
			idx = layered.NewContinuous(st.Attr, layered.FromBounds(st.Bounds))
		} else {
			idx = layered.NewDiscrete(st.Attr)
		}
		for bid, entries := range st.Blocks {
			idx.AppendBlock(uint64(bid), entries)
		}
		e.lidx[st.Key] = idx
	}
	for _, st := range c.ALIs {
		if uint64(len(st.Blocks)) != c.Height {
			return fmt.Errorf("core: checkpoint auth index %q covers %d of %d blocks", st.Key, len(st.Blocks), c.Height)
		}
		var ali *auth.ALI
		if st.Continuous {
			ali = auth.NewContinuous(st.Attr, layered.FromBounds(st.Bounds), e.cfg.MBTreeFanout)
		} else {
			ali = auth.NewDiscrete(st.Attr, e.cfg.MBTreeFanout)
		}
		for bid, recs := range st.Blocks {
			ali.AppendBlock(uint64(bid), recs)
		}
		e.alis[st.Key] = ali
	}
	if _, ok := e.lidx[".senid"]; !ok {
		return fmt.Errorf("core: checkpoint misses the system index .senid")
	}
	if _, ok := e.lidx[".tname"]; !ok {
		return fmt.Errorf("core: checkpoint misses the system index .tname")
	}
	return nil
}
