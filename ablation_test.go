package sebdb

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// first-level histogram depth of the layered index (§IV-B: "the height
// of histogram is configurable for different precisions"), the MB-tree
// page fanout (§VII: "The page size of MB-tree implementation is
// 4 KB"), and the cache policy already covered by Fig. 22.

import (
	"fmt"
	"testing"

	"sebdb/internal/auth"
	"sebdb/internal/bench"
	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/types"
)

// BenchmarkAblationHistogramDepth sweeps the equal-depth histogram
// height. Deeper histograms prune more blocks at the first level for
// selective ranges (fewer false-positive candidate blocks) at the cost
// of larger first-level bitmaps.
func BenchmarkAblationHistogramDepth(b *testing.B) {
	for _, depth := range []int{2, 10, 100, 1000} {
		b.Run(fmt.Sprintf("Depth%d", depth), func(b *testing.B) {
			e, err := core.Open(core.Config{
				Dir: b.TempDir(), HistogramDepth: depth, DefaultSender: "bench",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			err = bench.LoadRange(e, bench.GenConfig{
				Blocks: 100, TxPerBlock: 50, ResultSize: 250,
				Dist: bench.Uniform, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := bench.Q4(e, bench.RangeLo, bench.RangeHi, exec.MethodLayered)
				if err != nil || n != 250 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkAblationMBTreeFanout sweeps the ALI's MB-tree fanout: wide
// pages (the paper's ~100-slot 4 KB page) shorten the tree but expose
// more per-leaf digests in each VO; narrow pages do the opposite.
// VO-bytes is reported per variant.
func BenchmarkAblationMBTreeFanout(b *testing.B) {
	for _, fanout := range []int{4, 16, 100, 400} {
		b.Run(fmt.Sprintf("Fanout%d", fanout), func(b *testing.B) {
			e, err := core.Open(core.Config{
				Dir: b.TempDir(), HistogramDepth: 100,
				MBTreeFanout: fanout, DefaultSender: "bench",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			err = bench.LoadAuth(e, bench.GenConfig{
				Blocks: 50, TxPerBlock: 50, ResultSize: 250,
				Dist: bench.Uniform, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.CreateAuthIndex("donate", "amount"); err != nil {
				b.Fatal(err)
			}
			ali := e.AuthIndex("donate", "amount")
			lo, hi := types.Dec(bench.RangeLo), types.Dec(bench.RangeHi)
			var voBytes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ans := auth.Serve(ali, e.Height(), nil, lo, hi)
				voBytes = ans.Size()
				if _, _, err := auth.VerifyAnswer(ans, lo, hi); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(voBytes), "VO-bytes")
		})
	}
}

// BenchmarkAblationBlockSize sweeps transactions-per-block: bigger
// blocks mean fewer seeks for scans but coarser index granularity
// (candidate blocks carry more irrelevant rows).
func BenchmarkAblationBlockSize(b *testing.B) {
	const totalTxs = 5000
	for _, per := range []int{25, 100, 500} {
		b.Run(fmt.Sprintf("TxPerBlock%d", per), func(b *testing.B) {
			e, err := core.Open(core.Config{
				Dir: b.TempDir(), HistogramDepth: 100, DefaultSender: "bench",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			err = bench.LoadRange(e, bench.GenConfig{
				Blocks: totalTxs / per, TxPerBlock: per, ResultSize: 250,
				Dist: bench.Uniform, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Q4(e, bench.RangeLo, bench.RangeHi, exec.MethodLayered); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
