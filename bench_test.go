// Package sebdb's root benchmark suite: one testing.B benchmark per
// table/figure of the paper's evaluation (§VII). Each benchmark
// exercises the same code path as the corresponding bchainbench figure
// harness at a reduced, fixed dataset size, so `go test -bench=.`
// reproduces the paper's qualitative comparisons quickly; run
// `bchainbench -scale 1` for paper-scale sweeps.
package sebdb

import (
	"fmt"
	"testing"
	"time"

	"sebdb/internal/auth"
	"sebdb/internal/bench"
	"sebdb/internal/chainsql"
	"sebdb/internal/consensus"
	"sebdb/internal/consensus/kafka"
	"sebdb/internal/consensus/pbft"
	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

// Benchmark dataset sizes (shared): 100 blocks, 50 txs per block.
const (
	bmBlocks  = 100
	bmPer     = 50
	bmResults = 500
)

func trackingEngine(b *testing.B, dist bench.Distribution) *core.Engine {
	b.Helper()
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	err = bench.LoadTracking(e, bench.GenConfig{
		Blocks: bmBlocks, TxPerBlock: bmPer, ResultSize: bmResults,
		Dist: dist, Sigma: 10, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func methodName(m exec.Method) string {
	return map[exec.Method]string{
		exec.MethodScan: "Scan", exec.MethodBitmap: "Bitmap", exec.MethodLayered: "Layered",
	}[m]
}

// BenchmarkFig07Write measures Q1 write throughput under both
// consensus plug-ins (Fig. 7).
func BenchmarkFig07Write(b *testing.B) {
	for _, proto := range []string{"Kafka", "PBFT"} {
		b.Run(proto, func(b *testing.B) {
			engines := make([]*core.Engine, 4)
			committers := make([]consensus.Committer, 4)
			for i := range engines {
				e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				if err := bench.SetupSchema(e); err != nil {
					b.Fatal(err)
				}
				engines[i] = e
				committers[i] = e
			}
			var cons consensus.Consensus
			if proto == "Kafka" {
				broker := kafka.New(kafka.Options{BatchSize: 200, BatchTimeout: 5 * time.Millisecond})
				for _, c := range committers {
					broker.Subscribe(c)
				}
				cons = broker
			} else {
				cl, err := pbft.New(pbft.Options{F: 1, BatchSize: 10_000, BatchTimeout: 5 * time.Millisecond}, committers)
				if err != nil {
					b.Fatal(err)
				}
				cons = cl
			}
			if err := cons.Start(); err != nil {
				b.Fatal(err)
			}
			defer cons.Stop()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					tx := &types.Transaction{
						Ts: time.Now().UnixMicro(), SenID: "client", Tname: "donate",
						Args: []types.Value{
							types.Str(fmt.Sprintf("donor%d", i)), types.Str("edu"), types.Dec(1),
						},
					}
					if err := cons.Submit(tx); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkFig08TrackingDataSize runs Q2 under the three access
// methods (Fig. 8's SU/BU/LU series at one chain size).
func BenchmarkFig08TrackingDataSize(b *testing.B) {
	e := trackingEngine(b, bench.Uniform)
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		b.Run(methodName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := bench.Q2(e, "org1", m)
				if err != nil || n != bmResults {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkFig09TrackingResultSize runs Q2 with a Gaussian placement
// and a large result (Fig. 9's regime where the method gap narrows).
func BenchmarkFig09TrackingResultSize(b *testing.B) {
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	big := bmBlocks * bmPer / 2
	err = bench.LoadTracking(e, bench.GenConfig{
		Blocks: bmBlocks, TxPerBlock: bmPer, ResultSize: big,
		Dist: bench.Gaussian, Sigma: 50, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodLayered} {
		b.Run(methodName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Q2(e, "org1", m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10TwoDimTracking compares single-index vs two-index Q3
// (Fig. 10's SI vs TI).
func BenchmarkFig10TwoDimTracking(b *testing.B) {
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := bench.LoadTwoDim(e, bmBlocks, bmPer, 100, 900, 900, bench.Uniform, 10, 1); err != nil {
		b.Fatal(err)
	}
	win := &sqlparser.Window{Start: 0, End: int64(bmBlocks+1) * 1000}
	for _, cfg := range []struct {
		name string
		two  bool
	}{{"SingleIndex", false}, {"TwoIndexes", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := bench.Q3(e, "org1", "transfer", win, cfg.two)
				if err != nil || n != 100 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkFig11RangeDataSize runs Q4 under the three access methods
// (Fig. 11).
func BenchmarkFig11RangeDataSize(b *testing.B) {
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	err = bench.LoadRange(e, bench.GenConfig{
		Blocks: bmBlocks, TxPerBlock: bmPer, ResultSize: bmResults,
		Dist: bench.Uniform, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		b.Run(methodName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := bench.Q4(e, bench.RangeLo, bench.RangeHi, m)
				if err != nil || n != bmResults {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkFig12RangeResultSize runs Q4 at small and large result
// sizes under the layered index (Fig. 12's sensitivity axis).
func BenchmarkFig12RangeResultSize(b *testing.B) {
	for _, result := range []int{100, 1000} {
		b.Run(fmt.Sprintf("Results%d", result), func(b *testing.B) {
			e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			err = bench.LoadRange(e, bench.GenConfig{
				Blocks: bmBlocks, TxPerBlock: bmPer, ResultSize: result,
				Dist: bench.Uniform, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := bench.Q4(e, bench.RangeLo, bench.RangeHi, exec.MethodLayered)
				if err != nil || n != result {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

func joinEngine(b *testing.B) *core.Engine {
	b.Helper()
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if err := bench.LoadJoin(e, bmBlocks, bmPer, 1000, 300, bench.Uniform, 10, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFig13JoinDataSize runs the on-chain join Q5 under the three
// methods (Fig. 13).
func BenchmarkFig13JoinDataSize(b *testing.B) {
	e := joinEngine(b)
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		b.Run(methodName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := bench.Q5(e, m)
				if err != nil || n != 300 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkFig14JoinResultSize runs Q5 with the layered method at two
// result sizes (Fig. 14's axis).
func BenchmarkFig14JoinResultSize(b *testing.B) {
	for _, result := range []int{100, 600} {
		b.Run(fmt.Sprintf("Results%d", result), func(b *testing.B) {
			e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if err := bench.LoadJoin(e, bmBlocks, bmPer, 1000, result, bench.Uniform, 10, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := bench.Q5(e, exec.MethodLayered)
				if err != nil || n != result {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

func onOffEngine(b *testing.B, result int) *core.Engine {
	b.Helper()
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if err := bench.LoadOnOff(e, bmBlocks, bmPer, 1000, result, bench.Uniform, 10, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFig15OnOffDataSize runs the on-off-chain join Q6 under the
// three methods (Fig. 15).
func BenchmarkFig15OnOffDataSize(b *testing.B) {
	e := onOffEngine(b, 300)
	for _, m := range []exec.Method{exec.MethodScan, exec.MethodBitmap, exec.MethodLayered} {
		b.Run(methodName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := bench.Q6(e, m)
				if err != nil || n != 300 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkFig16OnOffResultSize runs Q6 layered at two result sizes
// (Fig. 16's axis).
func BenchmarkFig16OnOffResultSize(b *testing.B) {
	for _, result := range []int{100, 600} {
		e := onOffEngine(b, result)
		b.Run(fmt.Sprintf("Results%d", result), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := bench.Q6(e, exec.MethodLayered)
				if err != nil || n != result {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

func authEngine(b *testing.B) *core.Engine {
	b.Helper()
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	err = bench.LoadAuth(e, bench.GenConfig{
		Blocks: bmBlocks, TxPerBlock: bmPer, ResultSize: bmResults,
		Dist: bench.Uniform, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.CreateAuthIndex("donate", "amount"); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFig17VOSize reports the VO bytes of the ALI vs the
// ship-all-blocks baseline (Fig. 17) as custom metrics.
func BenchmarkFig17VOSize(b *testing.B) {
	e := authEngine(b)
	ali := e.AuthIndex("donate", "amount")
	lo, hi := types.Dec(bench.RangeLo), types.Dec(bench.RangeHi)
	b.Run("ALI", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = auth.Serve(ali, e.Height(), nil, lo, hi).Size()
		}
		b.ReportMetric(float64(size), "VO-bytes")
	})
	b.Run("Basic", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			ans := &auth.BasicAnswer{Height: e.Height()}
			for h := uint64(0); h < e.Height(); h++ {
				blk, err := e.Block(h)
				if err != nil {
					b.Fatal(err)
				}
				ans.Blocks = append(ans.Blocks, blk)
			}
			size = ans.Size()
		}
		b.ReportMetric(float64(size), "VO-bytes")
	})
}

// BenchmarkFig18AuthServer measures server-side authenticated query
// time, ALI vs baseline (Fig. 18).
func BenchmarkFig18AuthServer(b *testing.B) {
	e := authEngine(b)
	ali := e.AuthIndex("donate", "amount")
	lo, hi := types.Dec(bench.RangeLo), types.Dec(bench.RangeHi)
	b.Run("ALI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(auth.Serve(ali, e.Height(), nil, lo, hi).Blocks) == 0 {
				b.Fatal("empty answer")
			}
		}
	})
	b.Run("Basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for h := uint64(0); h < e.Height(); h++ {
				if _, err := e.Block(h); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkFig19AuthClient measures client-side verification time,
// ALI vs baseline (Fig. 19).
func BenchmarkFig19AuthClient(b *testing.B) {
	e := authEngine(b)
	ali := e.AuthIndex("donate", "amount")
	lo, hi := types.Dec(bench.RangeLo), types.Dec(bench.RangeHi)
	ans := auth.Serve(ali, e.Height(), nil, lo, hi)
	basic := &auth.BasicAnswer{Height: e.Height()}
	for h := uint64(0); h < e.Height(); h++ {
		blk, err := e.Block(h)
		if err != nil {
			b.Fatal(err)
		}
		basic.Blocks = append(basic.Blocks, blk)
	}
	headers := e.Headers()
	b.Run("ALI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := auth.VerifyAnswer(ans, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Basic", func(b *testing.B) {
		match := func(tx *types.Transaction) bool {
			return tx.Tname == "donate" && tx.Args[2].Float() >= bench.RangeLo
		}
		for i := 0; i < b.N; i++ {
			if _, err := auth.BasicVerify(basic, headers, match); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig20VsChainSQL1D compares one-dimension tracking (Fig. 20).
func BenchmarkFig20VsChainSQL1D(b *testing.B) {
	e := trackingEngine(b, bench.Uniform)
	cs, err := chainsql.New()
	if err != nil {
		b.Fatal(err)
	}
	for h := uint64(0); h < e.Height(); h++ {
		blk, err := e.Block(h)
		if err != nil {
			b.Fatal(err)
		}
		if err := cs.ApplyBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("SEBDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.Q2(e, "org1", exec.MethodLayered); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ChainSQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.TrackOneDim("org1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig21VsChainSQL2D compares two-dimension tracking with a
// heavy operator (Fig. 21's growth axis for ChainSQL).
func BenchmarkFig21VsChainSQL2D(b *testing.B) {
	e, err := bench.NewEngine(b.TempDir(), core.CacheNone)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	// org1: 2000 txs, of which only 100 are transfers (the answer).
	if err := bench.LoadTwoDim(e, bmBlocks, bmPer, 100, 1900, 0, bench.Uniform, 10, 1); err != nil {
		b.Fatal(err)
	}
	cs, err := chainsql.New()
	if err != nil {
		b.Fatal(err)
	}
	for h := uint64(0); h < e.Height(); h++ {
		blk, err := e.Block(h)
		if err != nil {
			b.Fatal(err)
		}
		if err := cs.ApplyBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("SEBDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := bench.Q3(e, "org1", "transfer", nil, true)
			if err != nil || n != 100 {
				b.Fatalf("n=%d err=%v", n, err)
			}
		}
	})
	b.Run("ChainSQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			txs, _, err := cs.TrackTwoDimClient("org1", "transfer", 0, 0)
			if err != nil || len(txs) != 100 {
				b.Fatalf("n=%d err=%v", len(txs), err)
			}
		}
	})
}

// BenchmarkFig22Cache compares the block cache and the transaction
// cache on the index-driven Q4 (Fig. 22).
func BenchmarkFig22Cache(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mode core.CacheMode
	}{{"BlockCache", core.CacheBlocks}, {"TxCache", core.CacheTxs}} {
		b.Run(cfg.name, func(b *testing.B) {
			e, err := bench.NewEngine(b.TempDir(), cfg.mode)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			err = bench.LoadRange(e, bench.GenConfig{
				Blocks: bmBlocks, TxPerBlock: bmPer, ResultSize: bmResults,
				Dist: bench.Uniform, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the cache.
			if _, err := bench.Q4(e, bench.RangeLo, bench.RangeHi, exec.MethodLayered); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := bench.Q4(e, bench.RangeLo, bench.RangeHi, exec.MethodLayered)
				if err != nil || n != bmResults {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}
