// Donation DApp: the running example of the paper's introduction. Three
// on-chain transaction types (donate, transfer, distribute) model the
// money flow donor → project → organization → donee; private details
// live off-chain in the node's local RDBMS. The example exercises
// signed transactions, track-trace lineage, the on-chain join and the
// on-off-chain join.
package main

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
	"log"
	"os"

	"sebdb/internal/core"
	"sebdb/internal/rdbms"
	"sebdb/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "sebdb-donation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //sebdb:ignore-err example exit path; errors have nowhere to go

	engine, err := core.Open(core.Config{Dir: dir, BlockMaxTxs: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close() //sebdb:ignore-err example exit path; errors have nowhere to go

	// Each participant signs its transactions with its own key.
	for _, who := range []string{"jack", "charity", "school1"} {
		_, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		engine.RegisterKey(who, priv)
	}

	// On-chain schema (Fig. 6's three main tables).
	for _, ddl := range []string{
		`CREATE donate (donor string, project string, amount decimal)`,
		`CREATE transfer (project string, donor string, organization string, amount decimal)`,
		`CREATE distribute (project string, donor string, organization string, donee string, amount decimal)`,
	} {
		if _, err := engine.Execute(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// Off-chain: the school's private donee records.
	db := engine.OffChain()
	must(db.CreateTable("doneeinfo", []rdbms.Column{
		{Name: "donee", Kind: types.KindString},
		{Name: "family_income", Kind: types.KindDecimal},
		{Name: "school", Kind: types.KindString},
	}))
	must(db.Insert("doneeinfo", rdbms.Row{types.Str("tom"), types.Dec(8_000), types.Str("school1")}))
	must(db.Insert("doneeinfo", rdbms.Row{types.Str("ann"), types.Dec(12_000), types.Str("school1")}))

	// The money flow of Example 1.
	exec := func(sender, sql string) {
		if _, err := engine.ExecuteAs(sender, sql); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	exec("jack", `INSERT INTO donate ("jack", "education", 100)`)
	exec("jack", `INSERT INTO donate ("jack", "education", 50)`)
	exec("charity", `INSERT INTO transfer ("education", "jack", "school1", 120)`)
	exec("school1", `INSERT INTO distribute ("education", "jack", "school1", "tom", 70)`)
	exec("school1", `INSERT INTO distribute ("education", "jack", "school1", "ann", 50)`)
	must(engine.Flush())

	// Every committed transaction carries a verifiable signature.
	blk, err := engine.Block(engine.Height() - 1)
	must(err)
	for _, tx := range blk.Txs {
		if !tx.VerifySig() {
			log.Fatalf("unsigned transaction %d slipped in", tx.Tid)
		}
	}

	// Lineage: everything the charity did (track-trace, Q2-style).
	show(engine, `TRACE OPERATOR = "charity"`)
	// Where did jack's donation go? Follow transfer ⋈ distribute.
	show(engine, `SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization`)
	// Who exactly received it? Join the chain against the school's
	// private records (on-off-chain join, Q6-style).
	show(engine, `SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee`)

	fmt.Printf("\ndonation ledger: %d blocks\n", engine.Height())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func show(e *core.Engine, sql string) {
	fmt.Printf("\n> %s\n", sql)
	res, err := e.Execute(sql)
	must(err)
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(cells)
	}
}
