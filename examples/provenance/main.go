// Provenance: food-ingredient traceability, one of the blockchain
// applications the paper's introduction motivates. A batch of produce
// moves farm → processor → distributor → store; every hand-off is an
// on-chain transaction. The example shows track-trace over both
// dimensions, time-window queries against the block index, and the
// tamper-evidence of the chain itself.
package main

import (
	"fmt"
	"log"
	"os"

	"sebdb/internal/core"
	"sebdb/internal/exec"
	"sebdb/internal/sqlparser"
	"sebdb/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "sebdb-provenance-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //sebdb:ignore-err example exit path; errors have nowhere to go

	engine, err := core.Open(core.Config{Dir: dir, DefaultSender: "registry"})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close() //sebdb:ignore-err example exit path; errors have nowhere to go

	if _, err := engine.Execute(
		`CREATE shipment (batch string, origin string, destination string, kilos decimal)`); err != nil {
		log.Fatal(err)
	}
	must(engine.FlushAt(1))

	// Three days of hand-offs; each day becomes one block so time
	// windows align with the block index.
	days := [][]struct {
		sender, batch, from, to string
		kilos                   float64
	}{
		{ // day 1: harvest leaves the farms
			{"farm-a", "apples-17", "farm-a", "processor-x", 1200},
			{"farm-b", "pears-03", "farm-b", "processor-x", 800},
		},
		{ // day 2: processing and wholesale
			{"processor-x", "apples-17", "processor-x", "distributor-1", 1100},
			{"processor-x", "pears-03", "processor-x", "distributor-1", 750},
		},
		{ // day 3: retail
			{"distributor-1", "apples-17", "distributor-1", "store-42", 500},
			{"distributor-1", "apples-17", "distributor-1", "store-77", 550},
		},
	}
	for d, events := range days {
		var batch []*types.Transaction
		for _, ev := range events {
			tx, err := engine.NewTransaction(ev.sender, "shipment", []types.Value{
				types.Str(ev.batch), types.Str(ev.from), types.Str(ev.to), types.Dec(ev.kilos),
			})
			must(err)
			tx.Ts = int64(d+1) * 1000
			batch = append(batch, tx)
		}
		_, err := engine.CommitBlock(batch, int64(d+1)*1000)
		must(err)
	}

	// A recall: trace the full history of batch apples-17. The layered
	// index on the batch column accelerates the lookup.
	must(engine.CreateIndex("shipment", "batch"))
	show(engine, `SELECT * FROM shipment WHERE batch = "apples-17"`)

	// Who touched the supply chain on day 2? Operator-dimension
	// track-trace restricted to a time window.
	show(engine, `TRACE [2000, 2999] OPERATOR = "processor-x"`)

	// Exec-level two-dimension tracking: every shipment processor-x
	// sent, any day (Algorithm 1 with both global indexes).
	q := &sqlparser.Trace{Operator: "processor-x", HasOperator: true,
		Operation: "shipment", HasOperation: true}
	txs, stats, err := exec.Track(engine, q, exec.MethodLayered)
	must(err)
	fmt.Printf("\nprocessor-x sent %d shipments (examined %d txs via %d index probes)\n",
		len(txs), stats.TxsExamined, stats.IndexProbes)

	// Tamper-evidence: forging a quantity breaks the block's Merkle
	// root, so validation fails.
	blk, err := engine.Block(1)
	must(err)
	blk2 := *blk
	forged := *blk.Txs[0]
	forged.Args = append([]types.Value(nil), forged.Args...)
	forged.Args[3] = types.Dec(99999)
	blk2.Txs = append([]*types.Transaction{&forged}, blk.Txs[1:]...)
	if err := blk2.Validate(); err != nil {
		fmt.Printf("\ntampering detected as expected: %v\n", err)
	} else {
		log.Fatal("tampered block validated!")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func show(e *core.Engine, sql string) {
	fmt.Printf("\n> %s\n", sql)
	res, err := e.Execute(sql)
	must(err)
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(cells)
	}
}
