// Thin client: the §VI protocol end to end. Four full nodes hold the
// same chain with an authenticated layered index; a thin client that
// stores only block headers runs a range query against one (untrusted)
// node, verifies the VO, and confirms the snapshot digest with sampled
// auxiliary nodes — detecting a Byzantine auxiliary along the way.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sebdb/internal/auth"
	"sebdb/internal/core"
	"sebdb/internal/node"
	"sebdb/internal/thinclient"
	"sebdb/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "sebdb-thin-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //sebdb:ignore-err example exit path; errors have nowhere to go

	// Build node 0's chain: 10 blocks of donations.
	engines := make([]*core.Engine, 4)
	for i := range engines {
		e, err := core.Open(core.Config{
			Dir: filepath.Join(dir, fmt.Sprintf("node%d", i)), HistogramDepth: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer e.Close() //sebdb:ignore-err example exit path; errors have nowhere to go
		engines[i] = e
	}
	e0 := engines[0]
	if _, err := e0.Execute(`CREATE donate (donor string, project string, amount decimal)`); err != nil {
		log.Fatal(err)
	}
	must(e0.FlushAt(1))
	tidAmount := 0
	for b := 0; b < 10; b++ {
		var batch []*types.Transaction
		for i := 0; i < 10; i++ {
			tx, err := e0.NewTransaction("org1", "donate", []types.Value{
				types.Str(fmt.Sprintf("donor%02d", tidAmount%7)),
				types.Str("education"),
				types.Dec(float64(tidAmount)),
			})
			must(err)
			tx.Ts = int64(b+1) * 1000
			batch = append(batch, tx)
			tidAmount++
		}
		_, err := e0.CommitBlock(batch, int64(b+1)*1000)
		must(err)
	}
	// Replicate to the other three nodes (what consensus would do) and
	// build the ALI everywhere.
	for h := uint64(0); h < e0.Height(); h++ {
		blk, err := e0.Block(h)
		must(err)
		for _, e := range engines[1:] {
			must(e.ApplyBlock(blk))
		}
	}
	var qns []node.QueryNode
	for i, e := range engines {
		must(e.CreateAuthIndex("donate", "amount"))
		n := node.New(e)
		defer n.Close() //sebdb:ignore-err example exit path; errors have nowhere to go
		qns = append(qns, &node.Local{Node: n, Name: fmt.Sprintf("node%d", i)})
	}

	// The thin client syncs headers only — ~200 bytes per block instead
	// of full blocks.
	tc := thinclient.New(42)
	must(tc.SyncHeaders(qns[0]))
	fmt.Printf("thin client synced %d headers\n", tc.Height())

	// Authenticated range query: amounts in [25, 40].
	req := &node.AuthRequest{Table: "donate", Col: "amount",
		Lo: types.Dec(25), Hi: types.Dec(40)}
	txs, stats, err := tc.AuthQuery(qns[0], qns[1:], req,
		thinclient.Options{M: 2, ByzantineRatio: 0.25, MaxByzantine: 1})
	must(err)
	fmt.Printf("verified %d transactions; VO %d bytes over %d blocks; "+
		"%d/%d auxiliary digests matched; wrong-digest probability %.3g\n",
		len(txs), stats.VOSize, stats.BlocksInAnswer, stats.Identical, stats.AuxAsked, stats.Theta)
	for _, tx := range txs[:3] {
		fmt.Printf("  tid=%d amount=%s\n", tx.Tid, tx.Args[2])
	}

	// A Byzantine full node that withholds part of the answer is caught:
	// its digest cannot match the honest auxiliaries.
	ans, err := qns[0].AuthQuery(req)
	must(err)
	ans.Blocks = ans.Blocks[:len(ans.Blocks)-1] // withhold the last block
	digest, _, err := auth.VerifyAnswer(ans, req.Lo, req.Hi)
	must(err)
	req2 := *req
	req2.Height = ans.Height
	honest, err := qns[1].AuthDigest(&req2)
	must(err)
	if digest != honest {
		fmt.Println("withholding attack detected: digest mismatch with auxiliary node")
	} else {
		log.Fatal("withholding attack went undetected!")
	}

	// Equation 6 in action: required identical digests for 99.9%
	// confidence under various Byzantine ratios.
	fmt.Println("\nrequired m (of n=20 auxiliaries, θ < 0.001):")
	for _, p := range []float64{0.1, 0.2, 0.3} {
		m := auth.MinIdenticalFor(p, 20, 20, 0.001)
		if m == 0 {
			fmt.Printf("  p=%.1f → unachievable with n=20 (ask more auxiliaries)\n", p)
			continue
		}
		fmt.Printf("  p=%.1f → m=%d\n", p, m)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
