// Quickstart: open a SEBDB engine, declare a table, insert tuples as
// blockchain transactions and query them back with the SQL-like
// language — the minimum end-to-end loop of the system.
package main

import (
	"fmt"
	"log"
	"os"

	"sebdb/internal/core"
	"sebdb/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "sebdb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //sebdb:ignore-err example exit path; errors have nowhere to go

	// Open a single-node engine; it packages blocks itself.
	engine, err := core.Open(core.Config{Dir: dir, BlockMaxTxs: 4, DefaultSender: "alice"})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close() //sebdb:ignore-err example exit path; errors have nowhere to go

	// DDL straight from the paper's Example 1.
	mustExec(engine, `CREATE Donate ( donor string, project string, amount decimal)`)

	// Inserts become blockchain transactions; every 4 make a block.
	mustExec(engine, `INSERT into Donate ("Jack", "Education", 100)`)
	mustExec(engine, `INSERT into Donate ("Mary", "Education", 250)`)
	mustExec(engine, `INSERT into Donate ("Jack", "Health", 80)`)
	if _, err := engine.Execute(`INSERT INTO donate VALUES(?,?,?)`,
		types.Str("Zoe"), types.Str("Health"), types.Dec(40)); err != nil {
		log.Fatal(err)
	}
	if err := engine.Flush(); err != nil { // package the remainder
		log.Fatal(err)
	}

	// Queries: predicates, projections, and the implicit system columns.
	show(engine, `SELECT * from Donate where donor = "Jack"`)
	show(engine, `SELECT donor, amount FROM donate WHERE amount BETWEEN 50 AND 300`)
	show(engine, `TRACE OPERATOR = "alice"`)
	show(engine, `GET BLOCK ID=1`)

	fmt.Printf("\nchain height: %d blocks\n", engine.Height())
}

func mustExec(e *core.Engine, sql string) {
	if _, err := e.Execute(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}

func show(e *core.Engine, sql string) {
	fmt.Printf("\n> %s\n", sql)
	res, err := e.Execute(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(cells)
	}
}
