// DApp: the application layer of the paper's Fig. 2 — a decentralized
// charity application defined by smart contracts with embedded SQL,
// with channel-based access control protecting the participants'
// private tables. Contracts deploy through the chain itself, so every
// node replays the same procedures.
package main

import (
	"fmt"
	"log"
	"os"

	"sebdb/internal/core"
	"sebdb/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "sebdb-dapp-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir) //sebdb:ignore-err example exit path; errors have nowhere to go

	engine, err := core.Open(core.Config{Dir: dir, BlockMaxTxs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close() //sebdb:ignore-err example exit path; errors have nowhere to go

	// Schema: a public ledger plus a members-only audit table.
	for _, ddl := range []string{
		`CREATE donate (donor string, project string, amount decimal)`,
		`CREATE audit (auditor string, finding string)`,
	} {
		if _, err := engine.Execute(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// Access control: the audit channel admits only the charity and the
	// auditor, and only the auditor may write findings.
	acl := engine.AccessControl()
	must(acl.CreateChannel("auditors", "charity", "ernst"))
	must(acl.AssignTable("audit", "auditors"))
	must(acl.RestrictWriters("auditors", "ernst"))

	// The DApp's business logic as smart contracts: SQL with $n
	// parameters and the implicit $sender.
	must(engine.DeployContract("charity", "give", []string{
		`INSERT INTO donate ($sender, $1, $2)`,
		`SELECT donor, amount FROM donate WHERE project = $1`,
	}))
	must(engine.DeployContract("charity", "myhistory", []string{
		`TRACE OPERATOR = $sender`,
	}))
	must(engine.Flush())

	// Donors invoke contracts; each embedded statement runs as them.
	if _, err := engine.InvokeContract("jack", "give", types.Str("education"), types.Dec(100)); err != nil {
		log.Fatal(err)
	}
	must(engine.Flush())
	res, err := engine.InvokeContract("mary", "give", types.Str("education"), types.Dec(40))
	if err != nil {
		log.Fatal(err)
	}
	must(engine.Flush())
	fmt.Println("education project donations (returned by the give contract):")
	for _, row := range res.Rows {
		fmt.Printf("  %s gave %s\n", row[0], row[1])
	}

	// Track-trace via contract.
	res, err = engine.InvokeContract("jack", "myhistory")
	must(err)
	fmt.Printf("\njack's on-chain history: %d transactions\n", len(res.Rows))

	// Access control in action.
	if _, err := engine.ExecuteAs("ernst", `INSERT INTO audit ("ernst", "books check out")`); err != nil {
		log.Fatal(err)
	}
	must(engine.Flush())
	if _, err := engine.ExecuteAs("jack", `SELECT * FROM audit`); err != nil {
		fmt.Printf("\njack reading the audit table: %v\n", err)
	} else {
		log.Fatal("access control failed to protect the audit channel")
	}
	if _, err := engine.ExecuteAs("charity", `INSERT INTO audit ("charity", "self-audit")`); err != nil {
		fmt.Printf("charity writing audit findings: %v\n", err)
	} else {
		log.Fatal("writer restriction failed")
	}
	res, err = engine.ExecuteAs("charity", `SELECT * FROM audit`)
	must(err)
	fmt.Printf("charity (a channel member) reads %d audit finding(s)\n", len(res.Rows))

	fmt.Printf("\ndeployed contracts: %v; chain height: %d\n",
		engine.Contracts().Names(), engine.Height())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
